// Segmented, CRC-framed append-only write-ahead log for prio_server.
//
// The multi-process runtime keeps all accepted state in memory; this WAL is
// the durability substrate that lets a server survive kill -9 and rejoin
// its mesh mid-epoch (src/store/recovery.h). One segment file per epoch,
// named wal-<epoch 8 hex>.log; segments rotate at epoch boundaries and
// segments older than the newest snapshot are deleted (truncation).
//
// Record framing:
//
//   [u32 len (LE)] [u32 crc32 (LE)] [u8 type || payload (len bytes)]
//
// with crc32 (IEEE, reflected) computed over the len prefix and the body,
// so a bit flip in either is caught. A torn tail -- a record cut short by
// a crash, or trailing garbage -- is detected by a short read, an
// implausible length, or a CRC mismatch; read_segment stops at the first
// bad record and reports the clean prefix length so recovery can truncate
// the file there and continue. Corruption never throws out of the reader.
//
// Fsync policy trades durability for append throughput:
//   kAlways -- fsync after every append; survives power loss per record.
//   kEpoch  -- fsync only at epoch boundaries (rotation); a power failure
//              may lose the open epoch, but a process crash (kill -9)
//              loses nothing: written bytes live in the OS page cache.
//   kOff    -- never fsync; durable against process death only.
#pragma once

#include <cstdio>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/common.h"

namespace prio::store {

enum class FsyncPolicy { kAlways, kEpoch, kOff };

// Parses "always" / "epoch" / "off" (the --fsync flag); nullopt otherwise.
std::optional<FsyncPolicy> parse_fsync_policy(const std::string& text);
const char* fsync_policy_name(FsyncPolicy policy);

// CRC-32 (IEEE 802.3, reflected, init/xorout 0xffffffff) -- the ubiquitous
// zlib polynomial, implemented locally so the store has no new deps.
u32 crc32(std::span<const u8> data, u32 seed = 0);

// Little-endian u32 framing helpers shared by the WAL and snapshot
// containers.
inline void put_le32(std::vector<u8>& out, u32 v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<u8>(v >> (8 * i)));
}
inline u32 get_le32(const u8* p) {
  u32 v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<u32>(p[i]) << (8 * i);
  return v;
}

// fsyncs a directory so renames/creations inside it are power-loss
// durable (fsync on the file alone persists data + inode, not the
// directory entry). Best-effort: failure is ignored, matching the
// fsync-policy degradation story.
void fsync_dir(const std::string& dir);

// Records a WAL segment can hold. Payload encodings use net/wire.h and are
// owned by the layer that writes them (server/shard.h): the store only
// frames and checksums bytes.
inline constexpr u8 kWalIntake = 1;      // sealed client blob accepted at intake
inline constexpr u8 kWalBatch = 2;       // committed batch: ids + verdicts
inline constexpr u8 kWalEpochClose = 3;  // epoch published/closed
inline constexpr u8 kWalGeneration = 4;  // mesh channel-key generation bump

struct WalRecord {
  u8 type = 0;
  std::vector<u8> payload;
};

// Largest record the reader will believe. Bounds a single intake blob
// (<= 1 MiB runtime cap) plus framing with lots of slack; an on-disk
// length beyond this is corruption, not a huge record.
inline constexpr size_t kMaxWalRecordLen = size_t{1} << 24;

// Segment path helpers. Epochs are zero-padded so lexicographic order is
// numeric order.
std::string wal_segment_name(u32 epoch);
std::string wal_segment_path(const std::string& dir, u32 epoch);

// Appends framed records to one segment file, honoring the fsync policy.
// Not thread-safe; the caller (EpochStore) serializes appends.
class WalWriter {
 public:
  // Opens (creating or appending to) the segment for `epoch`. Throws
  // std::runtime_error if the directory is unwritable.
  WalWriter(const std::string& dir, u32 epoch, FsyncPolicy policy);
  // Opens an arbitrary record log with the same framing (the never-rotated
  // aggregates.log uses this).
  WalWriter(const std::string& path, FsyncPolicy policy);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  u32 epoch() const { return epoch_; }
  const std::string& path() const { return path_; }

  // Frames, writes, and (policy kAlways) fsyncs one record. Throws if the
  // write -- or, under kAlways, the fsync -- fails, so the caller nacks
  // instead of acking durability the disk refused. A partial write is
  // repaired in place: the file is cut back to the last whole record, so a
  // later append can never land beyond a torn prefix that replay (which
  // stops at the first bad CRC) could not cross. If the disk refuses even
  // the repair, the writer poisons itself and every further append throws
  // -- nothing may be acked into an unreachable suffix.
  void append(u8 type, std::span<const u8> payload);

  // Flushes and fsyncs regardless of policy except kOff (epoch boundaries).
  // Returns false if the flush/fsync failed -- the caller must NOT prune
  // older copies whose replacement never verifiably reached the platter.
  bool sync();

  void close_file();

 private:
  // Cuts the file back to clean_bytes_ after a failed record write;
  // poisons the writer if the repair itself fails.
  void repair_failed_append();

  std::string path_;
  u32 epoch_ = 0;
  FsyncPolicy policy_;
  std::FILE* file_ = nullptr;
  size_t clean_bytes_ = 0;  // offset after the last fully written record
  bool poisoned_ = false;   // a failed append could not be repaired
};

// The decoded clean prefix of one segment.
struct WalSegment {
  std::vector<WalRecord> records;
  size_t clean_bytes = 0;   // offset of the first bad/torn record, if any
  bool torn_tail = false;   // true if trailing bytes were not a clean record
};

// Reads every valid record from the start of the file, stopping at the
// first torn or corrupt record (never throwing on corruption). A missing
// file reads as an empty, untorn segment.
WalSegment read_segment(const std::string& path);

// Truncates the segment file to its clean prefix (recovery after a torn
// tail). Returns false if the file cannot be truncated.
bool truncate_segment(const std::string& path, size_t clean_bytes);

// Lists the epochs that have a WAL segment in `dir`, ascending.
std::vector<u32> list_wal_epochs(const std::string& dir);

// Deletes segments for epochs strictly older than `keep_from_epoch`.
void prune_wal_segments(const std::string& dir, u32 keep_from_epoch);

}  // namespace prio::store
