#include "store/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "store/fault.h"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace prio::store {

namespace {

std::array<u32, 256> make_crc_table() {
  std::array<u32, 256> table{};
  for (u32 i = 0; i < 256; ++i) {
    u32 c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

void fsync_dir(const std::string& dir) {
  // Injected failure: the directory fsync "fails" (is skipped). The
  // contract is best-effort, so callers must proceed identically.
  if (fault_tick(FaultOp::kDirFsync)) return;
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

u32 crc32(std::span<const u8> data, u32 seed) {
  static const std::array<u32, 256> table = make_crc_table();
  u32 c = seed ^ 0xffffffffu;
  for (u8 b : data) c = table[(c ^ b) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

std::optional<FsyncPolicy> parse_fsync_policy(const std::string& text) {
  if (text == "always") return FsyncPolicy::kAlways;
  if (text == "epoch") return FsyncPolicy::kEpoch;
  if (text == "off") return FsyncPolicy::kOff;
  return std::nullopt;
}

const char* fsync_policy_name(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways: return "always";
    case FsyncPolicy::kEpoch: return "epoch";
    case FsyncPolicy::kOff: return "off";
  }
  return "?";
}

std::string wal_segment_name(u32 epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%08x.log", epoch);
  return buf;
}

std::string wal_segment_path(const std::string& dir, u32 epoch) {
  return dir + "/" + wal_segment_name(epoch);
}

WalWriter::WalWriter(const std::string& dir, u32 epoch, FsyncPolicy policy)
    : WalWriter(wal_segment_path(dir, epoch), policy) {
  epoch_ = epoch;
}

WalWriter::WalWriter(const std::string& path, FsyncPolicy policy)
    : path_(path), policy_(policy) {
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    throw std::runtime_error("WalWriter: cannot open " + path_ + " (errno=" +
                             std::to_string(errno) + ")");
  }
  // Whatever the file holds now is the clean prefix a failed append may
  // cut back to ("ab" puts every write at the end regardless of position).
  std::fseek(file_, 0, SEEK_END);
  const long end = std::ftell(file_);
  clean_bytes_ = end > 0 ? static_cast<size_t>(end) : 0;
}

WalWriter::~WalWriter() { close_file(); }

void WalWriter::close_file() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void WalWriter::append(u8 type, std::span<const u8> payload) {
  require(file_ != nullptr, "WalWriter: append after close");
  const size_t body_len = 1 + payload.size();
  require(body_len <= kMaxWalRecordLen, "WalWriter: record too large");
  std::vector<u8> rec;
  rec.reserve(8 + body_len);
  put_le32(rec, static_cast<u32>(body_len));
  // CRC over the length prefix and the body: a flipped length byte fails
  // the checksum instead of walking the reader into the next record.
  u32 crc = crc32(std::span<const u8>(rec.data(), 4));
  crc = crc32(std::span<const u8>(&type, 1), crc);
  crc = crc32(payload, crc);
  put_le32(rec, crc);
  rec.push_back(type);
  rec.insert(rec.end(), payload.begin(), payload.end());
  if (poisoned_) {
    throw std::runtime_error("WalWriter: " + path_ +
                             " is poisoned by an unrepaired failed append");
  }
  if (auto fault = fault_tick(FaultOp::kWalAppend)) {
    if (fault->kind == FaultKind::kShortWrite) {
      // Land a real partial record so the repair path below has a genuine
      // torn prefix to clean up, then fail the append like a full disk.
      const size_t cut = std::min(
          rec.size() - 1,
          fault->arg ? static_cast<size_t>(fault->arg) : rec.size() / 2);
      (void)std::fwrite(rec.data(), 1, cut, file_);
      repair_failed_append();
      throw std::runtime_error("WalWriter: short write to " + path_ +
                               " (injected)");
    }
    throw std::runtime_error("WalWriter: injected EIO on append to " + path_);
  }
  if (std::fwrite(rec.data(), 1, rec.size(), file_) != rec.size()) {
    repair_failed_append();
    throw std::runtime_error("WalWriter: short write to " + path_);
  }
  // The record is whole from here on -- even if the kAlways fsync below
  // fails, the clean prefix includes it (a repair must never cut it).
  clean_bytes_ += rec.size();
  if (policy_ == FsyncPolicy::kAlways) {
    if (!sync()) {
      throw std::runtime_error("WalWriter: fsync failed on " + path_);
    }
  } else {
    // Push the record out of stdio's buffer so kill -9 cannot lose it;
    // only power loss can claim un-fsynced page-cache bytes.
    std::fflush(file_);
  }
}

void WalWriter::repair_failed_append() {
  // Flush any buffered fragment into the file first: bytes still sitting
  // in stdio's buffer would otherwise be appended AFTER the truncate, past
  // the point where replay stops at the first bad CRC.
  const bool flushed = std::fflush(file_) == 0;
  const bool cut = ::ftruncate(::fileno(file_),
                               static_cast<off_t>(clean_bytes_)) == 0;
  if (!flushed || !cut) poisoned_ = true;
}

bool WalWriter::sync() {
  require(file_ != nullptr, "WalWriter: sync after close");
  if (auto fault = fault_tick(FaultOp::kWalSync)) {
    (void)fault;
    return false;  // injected EIO: the caller must keep older copies
  }
  bool ok = std::fflush(file_) == 0;
  if (policy_ != FsyncPolicy::kOff) {
    ok = (::fsync(::fileno(file_)) == 0) && ok;
  }
  return ok;
}

WalSegment read_segment(const std::string& path) {
  WalSegment out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return out;  // missing segment: empty, untorn
  std::vector<u8> bytes;
  u8 buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);

  size_t pos = 0;
  while (bytes.size() - pos >= 8) {
    const u32 len = get_le32(bytes.data() + pos);
    const u32 want_crc = get_le32(bytes.data() + pos + 4);
    if (len == 0 || len > kMaxWalRecordLen || bytes.size() - pos - 8 < len) {
      break;  // implausible length or record cut short: torn tail
    }
    u32 crc = crc32(std::span<const u8>(bytes.data() + pos, 4));
    crc = crc32(std::span<const u8>(bytes.data() + pos + 8, len), crc);
    if (crc != want_crc) break;  // bit rot or a torn rewrite
    WalRecord rec;
    rec.type = bytes[pos + 8];
    rec.payload.assign(bytes.begin() + pos + 9, bytes.begin() + pos + 8 + len);
    out.records.push_back(std::move(rec));
    pos += 8 + size_t{len};
  }
  out.clean_bytes = pos;
  out.torn_tail = pos != bytes.size();
  return out;
}

bool truncate_segment(const std::string& path, size_t clean_bytes) {
  return ::truncate(path.c_str(), static_cast<off_t>(clean_bytes)) == 0;
}

std::vector<u32> list_wal_epochs(const std::string& dir) {
  std::vector<u32> epochs;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return epochs;
  while (dirent* e = ::readdir(d)) {
    unsigned epoch = 0;
    char tail = 0;
    if (std::sscanf(e->d_name, "wal-%8x.lo%c", &epoch, &tail) == 2 &&
        tail == 'g' && std::strlen(e->d_name) == wal_segment_name(epoch).size()) {
      epochs.push_back(static_cast<u32>(epoch));
    }
  }
  ::closedir(d);
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

void prune_wal_segments(const std::string& dir, u32 keep_from_epoch) {
  for (u32 epoch : list_wal_epochs(dir)) {
    if (epoch < keep_from_epoch) {
      ::unlink(wal_segment_path(dir, epoch).c_str());
    }
  }
}

}  // namespace prio::store
