// Low-overhead runtime metrics: counters, gauges, and fixed-bucket latency
// histograms behind a name-keyed registry.
//
// Design constraints, in order:
//   * The hot path (a lane thread mid-batch, an intake thread mid-ack) pays
//     ONE relaxed atomic RMW per event and allocates nothing: every metric
//     is registered once at startup and the component keeps the raw
//     pointer. Instances never move (unique_ptr payloads in the registry).
//   * Lanes never contend: each shard/lane registers its OWN instance of a
//     family (distinguished by a label such as shard="3"), so two lanes
//     incrementing "the same" counter touch different cache lines. The
//     cross-lane total is computed at scrape time, where a mutex and a few
//     hundred relaxed loads cost nothing.
//   * Scrape-while-write is race-free by construction: writers use relaxed
//     atomics, the scraper reads the same atomics relaxed. Histogram
//     bucket counts are monotone, so a torn scrape is at worst a snapshot
//     slightly out of phase between buckets -- fine for monitoring, and
//     clean under TSan.
//
// Rendering: render_prometheus() emits the text exposition format
// (per-instance samples with their label; histograms as cumulative
// _bucket/_sum/_count series); render_json() emits a structured snapshot
// with per-family totals and merged quantiles for /stats.json.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/common.h"

namespace prio::obs {

inline u64 now_ns() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class Counter {
 public:
  void inc(u64 n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  u64 get() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<u64> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t get() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Latency bucket upper bounds, in seconds: a 1-2-5 ladder from 1us to 10s.
// Fixed at compile time so observe() is a bounded scan plus one relaxed
// add -- no allocation, no locks, identical layout in every instance (which
// is what lets scrape-time merging across shards just add bucket counts).
inline constexpr std::array<double, 22> kLatencyBoundsSeconds = {
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3,
    5e-3, 1e-2, 2e-2, 5e-2, 1e-1, 2e-1, 5e-1, 1.0,  2.0,  5.0,  10.0};

class Histogram {
 public:
  static constexpr size_t kBuckets = kLatencyBoundsSeconds.size() + 1;

  void observe(double seconds) {
    size_t b = 0;
    while (b < kLatencyBoundsSeconds.size() &&
           seconds > kLatencyBoundsSeconds[b]) {
      ++b;
    }
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(static_cast<u64>(seconds * 1e9),
                      std::memory_order_relaxed);
  }
  void observe_ns(u64 ns) {
    observe(static_cast<double>(ns) * 1e-9);
  }

  u64 bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  u64 count() const {
    u64 n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }
  double sum_seconds() const {
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-9;
  }

  // Upper-bound quantile estimate from the bucket counts (the classic
  // Prometheus histogram_quantile flavor: returns the upper bound of the
  // bucket the q-th observation falls in; the overflow bucket reports the
  // last finite bound).
  double quantile(double q) const {
    std::array<u64, kBuckets> snap;
    u64 total = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
      snap[i] = buckets_[i].load(std::memory_order_relaxed);
      total += snap[i];
    }
    return quantile_of(snap, total, q);
  }

  static double quantile_of(const std::array<u64, kBuckets>& counts,
                            u64 total, double q) {
    if (total == 0) return 0.0;
    // Nearest-rank: the q-th observation is the ceil(q*N)-th smallest.
    const u64 rank = std::max<u64>(
        1, static_cast<u64>(std::ceil(q * static_cast<double>(total))));
    u64 cum = 0;
    for (size_t i = 0; i < kLatencyBoundsSeconds.size(); ++i) {
      cum += counts[i];
      if (cum >= rank) return kLatencyBoundsSeconds[i];
    }
    return kLatencyBoundsSeconds.back();
  }

 private:
  std::array<std::atomic<u64>, kBuckets> buckets_{};
  std::atomic<u64> sum_ns_{0};
};

// Times one scope into a histogram; a null histogram costs one branch.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h) : h_(h), t0_(h ? now_ns() : 0) {}
  ~ScopedTimer() {
    if (h_) h_->observe_ns(now_ns() - t0_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  u64 t0_;
};

// Formats one instance label, e.g. label_kv("shard", 3) -> shard="3".
inline std::string label_kv(const char* key, size_t value) {
  std::string out = key;
  out += "=\"";
  out += std::to_string(value);
  out += '"';
  return out;
}
inline std::string label_kv(const char* key, const std::string& value) {
  std::string out = key;
  out += "=\"";
  out += value;
  out += '"';
  return out;
}

enum class MetricKind { kCounter, kGauge, kHistogram };

// Name-keyed registry of metric families; each family holds one instance
// per label (per shard, per lane, ...). Registration takes a mutex and
// allocates; everything after returns stable raw pointers. Asking for an
// already-registered (name, label) returns the same instance, so wiring
// code can re-resolve pointers instead of threading them around.
class Registry {
 public:
  Counter* counter(const std::string& name, const std::string& help,
                   const std::string& label = "") {
    Instance& in = instance(name, help, MetricKind::kCounter, label);
    return in.c.get();
  }
  Gauge* gauge(const std::string& name, const std::string& help,
               const std::string& label = "") {
    Instance& in = instance(name, help, MetricKind::kGauge, label);
    return in.g.get();
  }
  Histogram* histogram(const std::string& name, const std::string& help,
                       const std::string& label = "") {
    Instance& in = instance(name, help, MetricKind::kHistogram, label);
    return in.h.get();
  }

  // ---- scrape-time aggregation across a family's instances -------------

  // Sum of a counter family's instances (0 for an unknown name).
  u64 total(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = families_.find(name);
    if (it == families_.end()) return 0;
    u64 sum = 0;
    for (const auto& in : it->second.instances) {
      if (in->c) sum += in->c->get();
      if (in->g) sum += static_cast<u64>(in->g->get());
    }
    return sum;
  }

  u64 hist_count(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = families_.find(name);
    if (it == families_.end()) return 0;
    u64 n = 0;
    for (const auto& in : it->second.instances) {
      if (in->h) n += in->h->count();
    }
    return n;
  }

  // Quantile over the union of a histogram family's instances.
  double hist_quantile(const std::string& name, double q) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = families_.find(name);
    if (it == families_.end()) return 0.0;
    std::array<u64, Histogram::kBuckets> merged{};
    u64 total = 0;
    for (const auto& in : it->second.instances) {
      if (!in->h) continue;
      for (size_t b = 0; b < Histogram::kBuckets; ++b) {
        const u64 c = in->h->bucket(b);
        merged[b] += c;
        total += c;
      }
    }
    return Histogram::quantile_of(merged, total, q);
  }

  // ---- rendering -------------------------------------------------------

  // Prometheus text exposition format (version 0.0.4).
  std::string render_prometheus() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    for (const auto& [name, fam] : families_) {
      out += "# HELP " + name + " " + fam.help + "\n";
      out += "# TYPE " + name + " " + kind_name(fam.kind) + "\n";
      for (const auto& in : fam.instances) {
        if (fam.kind == MetricKind::kHistogram) {
          u64 cum = 0;
          for (size_t b = 0; b < kLatencyBoundsSeconds.size(); ++b) {
            cum += in->h->bucket(b);
            out += name + "_bucket{" + with_label(in->label, "le=\"" +
                   fmt_double(kLatencyBoundsSeconds[b]) + "\"") + "} " +
                   std::to_string(cum) + "\n";
          }
          cum += in->h->bucket(kLatencyBoundsSeconds.size());
          out += name + "_bucket{" + with_label(in->label, "le=\"+Inf\"") +
                 "} " + std::to_string(cum) + "\n";
          out += name + "_sum" + brace(in->label) + " " +
                 fmt_double(in->h->sum_seconds()) + "\n";
          out += name + "_count" + brace(in->label) + " " +
                 std::to_string(cum) + "\n";
        } else if (fam.kind == MetricKind::kCounter) {
          out += name + brace(in->label) + " " + std::to_string(in->c->get()) +
                 "\n";
        } else {
          out += name + brace(in->label) + " " + std::to_string(in->g->get()) +
                 "\n";
        }
      }
    }
    return out;
  }

  // The "metrics" member of /stats.json: per-family type, cross-instance
  // total (counters/gauges) or count/sum/quantiles (histograms), and the
  // per-label series.
  std::string render_json() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::string out = "{";
    bool first_fam = true;
    for (const auto& [name, fam] : families_) {
      if (!first_fam) out += ",";
      first_fam = false;
      out += "\n    \"" + name + "\": {\"type\": \"" + kind_name(fam.kind) +
             "\", ";
      if (fam.kind == MetricKind::kHistogram) {
        std::array<u64, Histogram::kBuckets> merged{};
        u64 total = 0;
        double sum = 0.0;
        for (const auto& in : fam.instances) {
          for (size_t b = 0; b < Histogram::kBuckets; ++b) {
            const u64 c = in->h->bucket(b);
            merged[b] += c;
            total += c;
          }
          sum += in->h->sum_seconds();
        }
        out += "\"count\": " + std::to_string(total) +
               ", \"sum_s\": " + fmt_double(sum) +
               ", \"p50\": " + fmt_double(Histogram::quantile_of(merged, total, 0.50)) +
               ", \"p99\": " + fmt_double(Histogram::quantile_of(merged, total, 0.99)) +
               ", \"series\": {";
        bool first = true;
        for (const auto& in : fam.instances) {
          if (!first) out += ", ";
          first = false;
          // Plain appends: GCC 12 raises a spurious -Wrestrict on chained
          // operator+ with a char* left operand here (PR 105329 family).
          out += '"';
          out += json_escape(in->label);
          out += "\": {\"count\": ";
          out += std::to_string(in->h->count());
          out += ", \"p99\": ";
          out += fmt_double(in->h->quantile(0.99));
          out += '}';
        }
        out += "}}";
      } else {
        u64 total = 0;
        std::string series;
        bool first = true;
        for (const auto& in : fam.instances) {
          const std::int64_t v =
              fam.kind == MetricKind::kCounter
                  ? static_cast<std::int64_t>(in->c->get())
                  : in->g->get();
          total += static_cast<u64>(v);
          if (!first) series += ", ";
          first = false;
          series += '"';
          series += json_escape(in->label);
          series += "\": ";
          series += std::to_string(v);
        }
        out += "\"total\": " + std::to_string(total) + ", \"series\": {" +
               series + "}}";
      }
    }
    out += "\n  }";
    return out;
  }

 private:
  struct Instance {
    std::string label;
    std::unique_ptr<Counter> c;
    std::unique_ptr<Gauge> g;
    std::unique_ptr<Histogram> h;
  };
  struct Family {
    MetricKind kind = MetricKind::kCounter;
    std::string help;
    std::vector<std::unique_ptr<Instance>> instances;
  };

  Instance& instance(const std::string& name, const std::string& help,
                     MetricKind kind, const std::string& label) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = families_.try_emplace(name);
    Family& fam = it->second;
    if (inserted) {
      fam.kind = kind;
      fam.help = help;
    }
    require(fam.kind == kind,
            "obs::Registry: metric re-registered with a different kind");
    for (auto& in : fam.instances) {
      if (in->label == label) return *in;
    }
    auto in = std::make_unique<Instance>();
    in->label = label;
    switch (kind) {
      case MetricKind::kCounter: in->c = std::make_unique<Counter>(); break;
      case MetricKind::kGauge: in->g = std::make_unique<Gauge>(); break;
      case MetricKind::kHistogram:
        in->h = std::make_unique<Histogram>();
        break;
    }
    fam.instances.push_back(std::move(in));
    return *fam.instances.back();
  }

  static const char* kind_name(MetricKind k) {
    switch (k) {
      case MetricKind::kCounter: return "counter";
      case MetricKind::kGauge: return "gauge";
      case MetricKind::kHistogram: return "histogram";
    }
    return "counter";
  }

  static std::string fmt_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
  }

  static std::string brace(const std::string& label) {
    return label.empty() ? std::string() : "{" + label + "}";
  }
  static std::string with_label(const std::string& label,
                                const std::string& extra) {
    return label.empty() ? extra : label + "," + extra;
  }

  static std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

}  // namespace prio::obs
