// Structured JSONL trace log for pipeline stage events.
//
// One line per event, e.g.:
//   {"ts_us":1754650000123456,"event":"batch_committed","server":0,
//    "lane":2,"epoch":1,"batch":7,"n":8,"dur_us":912}
//
// Opt-in via `prio_server --trace-log FILE`; when disabled every call site
// holds a null pointer and pays a single predictable branch. When enabled,
// emission takes a mutex and an fwrite+fflush -- events are per-batch, not
// per-submission, so this never sits on the hot path proper.
#pragma once

#include <chrono>
#include <cstdio>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "util/common.h"

namespace prio::obs {

class TraceLog {
 public:
  // Returns nullptr (and prints to stderr) if the file cannot be opened.
  static std::unique_ptr<TraceLog> open(const std::string& path) {
    FILE* f = std::fopen(path.c_str(), "a");
    if (!f) {
      std::fprintf(stderr, "trace-log: cannot open %s\n", path.c_str());
      return nullptr;
    }
    return std::unique_ptr<TraceLog>(new TraceLog(f));
  }

  ~TraceLog() {
    if (f_) std::fclose(f_);
  }

  // Emits one JSONL record: the event name plus integer fields. Flushed per
  // event so a crash leaves a readable prefix.
  void event(const char* name,
             std::initializer_list<std::pair<const char*, long long>> fields) {
    const long long ts_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    std::string line = "{\"ts_us\":" + std::to_string(ts_us) +
                       ",\"event\":\"" + name + "\"";
    for (const auto& [k, v] : fields) {
      line += ",\"";
      line += k;
      line += "\":" + std::to_string(v);
    }
    line += "}\n";
    std::lock_guard<std::mutex> lock(mu_);
    std::fwrite(line.data(), 1, line.size(), f_);
    std::fflush(f_);
  }

 private:
  explicit TraceLog(FILE* f) : f_(f) {}

  std::mutex mu_;
  FILE* f_;
};

}  // namespace prio::obs
