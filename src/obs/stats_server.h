// Tiny poll-based HTTP/1.0 stats endpoint.
//
//   GET /metrics     -> Prometheus text exposition of the whole Registry
//   GET /stats.json  -> {"<caller fields>", "metrics": {...}}
//
// One background thread accepts and serves connections sequentially
// (Connection: close, one request per connection) -- a scrape endpoint for
// a monitoring poller, not a web server. The caller supplies an `extra`
// callback producing the leading JSON fields of /stats.json (server
// identity, shard state, totals); the registry snapshot is appended under
// "metrics". All metric reads are relaxed-atomic, so scraping a live
// cluster is race-free against the lane threads.
//
// Also hosts http_get(), the matching one-shot client used by
// prio_loadgen --scrape and the tests.
#pragma once

#include <poll.h>
#include <sys/socket.h>

#include <atomic>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "net/tcp_transport.h"
#include "obs/metrics.h"

namespace prio::obs {

class StatsServer {
 public:
  // Binds immediately (port 0 picks an ephemeral port; see port()), then
  // serves on a background thread until destruction.
  StatsServer(u16 port, const Registry* registry,
              std::function<std::string()> extra = {},
              const std::string& bind_host = "127.0.0.1")
      : listener_(port, bind_host),
        registry_(registry),
        extra_(std::move(extra)) {
    thread_ = std::thread([this] { loop(); });
  }

  ~StatsServer() {
    stop_.store(true);
    thread_.join();
  }

  u16 port() const { return listener_.port(); }

 private:
  void loop() {
    while (!stop_.load()) {
      auto sock = listener_.accept_conn(200);
      if (!sock) continue;
      serve_one(*sock);
    }
  }

  void serve_one(net::Socket& sock) {
    std::string req;
    if (!read_request(sock.fd(), req)) return;
    // Request line: "GET <path> HTTP/1.x".
    std::string path;
    if (req.compare(0, 4, "GET ") == 0) {
      const size_t end = req.find(' ', 4);
      if (end != std::string::npos) path = req.substr(4, end - 4);
    }
    std::string status = "200 OK";
    std::string type = "text/plain; charset=utf-8";
    std::string body;
    if (path == "/metrics") {
      type = "text/plain; version=0.0.4; charset=utf-8";
      body = registry_->render_prometheus();
    } else if (path == "/stats.json") {
      type = "application/json";
      const std::string extra = extra_ ? extra_() : std::string();
      body = "{\n  ";
      if (!extra.empty()) body += extra + ",\n  ";
      body += "\"metrics\": " + registry_->render_json() + "\n}\n";
    } else {
      status = "404 Not Found";
      body = "not found\n";
    }
    std::string resp = "HTTP/1.0 " + status +
                       "\r\nContent-Type: " + type +
                       "\r\nContent-Length: " + std::to_string(body.size()) +
                       "\r\nConnection: close\r\n\r\n" + body;
    write_all(sock.fd(), resp);
  }

  // Reads until the blank line ending the request headers (the response
  // ignores everything past the request line, so the body -- there is
  // none for GET -- is never waited for). ~2s budget, then give up.
  static bool read_request(int fd, std::string& out) {
    char buf[1024];
    for (int spins = 0; spins < 10; ++spins) {
      struct pollfd pfd{fd, POLLIN, 0};
      if (::poll(&pfd, 1, 200) <= 0) continue;
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) return false;
      out.append(buf, static_cast<size_t>(n));
      if (out.find("\r\n\r\n") != std::string::npos ||
          out.find("\n\n") != std::string::npos) {
        return true;
      }
      if (out.size() > 16 * 1024) return false;
    }
    return false;
  }

  static void write_all(int fd, const std::string& data) {
    size_t off = 0;
    while (off < data.size()) {
      const ssize_t n =
          ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return;
      off += static_cast<size_t>(n);
    }
  }

  net::TcpListener listener_;
  const Registry* registry_;
  std::function<std::string()> extra_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

// One-shot HTTP GET against a StatsServer (or anything speaking HTTP/1.0
// with Connection: close). Returns the response body, or nullopt on any
// connect/read failure or non-200 status.
inline std::optional<std::string> http_get(const std::string& host, u16 port,
                                           const std::string& path,
                                           int timeout_ms = 2000) {
  try {
    net::Socket sock = net::connect_tcp(host, port, timeout_ms);
    const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
    size_t off = 0;
    while (off < req.size()) {
      const ssize_t n =
          ::send(sock.fd(), req.data() + off, req.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return std::nullopt;
      off += static_cast<size_t>(n);
    }
    // The server closes the connection after one response; read to EOF.
    std::string resp;
    char buf[4096];
    const int deadline_spins = timeout_ms / 100 + 1;
    for (int spins = 0; spins < deadline_spins;) {
      struct pollfd pfd{sock.fd(), POLLIN, 0};
      const int rc = ::poll(&pfd, 1, 100);
      if (rc == 0) {
        ++spins;
        continue;
      }
      if (rc < 0) return std::nullopt;
      const ssize_t n = ::recv(sock.fd(), buf, sizeof(buf), 0);
      if (n < 0) return std::nullopt;
      if (n == 0) break;
      resp.append(buf, static_cast<size_t>(n));
    }
    const size_t hdr_end = resp.find("\r\n\r\n");
    if (hdr_end == std::string::npos) return std::nullopt;
    if (resp.find(" 200 ") == std::string::npos ||
        resp.find(" 200 ") > resp.find("\r\n")) {
      return std::nullopt;
    }
    return resp.substr(hdr_end + 4);
  } catch (const net::TransportError&) {
    return std::nullopt;
  }
}

}  // namespace prio::obs
