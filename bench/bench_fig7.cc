// Figure 7 reproduction: client encoding time across the application
// scenarios of Section 6.2, for Prio (SNIP), Prio-MPC, NIZK, and the SNARK
// cost model. The number in parentheses is the count of multiplication
// gates in the Valid circuit, matching the figure's x-axis labels.
//
// Scenarios:
//   Cell:    average signal strength per km^2 grid cell -- Geneva (64),
//            Seattle (868), Chicago (2424), London (6280), Tokyo (8760)
//   Browser: RAPPOR-style stats, count-min low/high resolution --
//            LowRes (80), HighRes (1410)
//   Survey:  Beck-21 (84), PCSI-78 (312), CPI-434 (434)
//   LinReg:  Heart (174; 13 mixed-width features), BrCa (929; 30x14-bit)
//
// Expected shape (paper): Prio fastest (milliseconds); Prio-MPC a small
// constant factor above; NIZK 50-100x slower; SNARK estimate ~1000x slower.

#include <cstdio>
#include <memory>

#include "afe/bitvec_sum.h"
#include "afe/countmin.h"
#include "afe/freq.h"
#include "afe/linreg.h"
#include "baseline/nizk.h"
#include "baseline/snark_model.h"
#include "bench_util.h"
#include "core/deployment.h"
#include "core/mpc_deployment.h"

namespace prio {
namespace {

using F = Fp64;

// Type-erased scenario: builds a Valid circuit + a representative encoding.
struct Scenario {
  std::string name;
  const Circuit<F>* circuit;
  std::vector<F> encoding;
};

// Measures client cost for the three measured schemes given a circuit and a
// valid encoding for it.
struct Times {
  double prio_s, mpc_s, nizk_s, snark_est_s;
};

Times measure(const Scenario& sc, bool run_nizk) {
  Times t{};
  SecureRng rng(1);
  const size_t m = sc.circuit->num_mul_gates();

  // Prio client: SNIP proof + compressed shares for 5 servers.
  {
    SnipProver<F> prover(sc.circuit);
    int reps = m > 4000 ? 3 : 10;
    t.prio_s = benchutil::time_seconds([&] {
      for (int i = 0; i < reps; ++i) {
        auto ext = prover.build_extended_input(sc.encoding, rng);
        auto cs = share_vector_compressed<F>(ext, 5, rng);
        volatile size_t sink = cs.explicit_share.size();
        (void)sink;
      }
    }) / reps;
  }

  // Prio-MPC client: M Beaver triples + SNIP over the triples + shares.
  {
    auto triple_circuit = make_triple_check_circuit<F>(m);
    SnipProver<F> prover(&triple_circuit);
    int reps = m > 4000 ? 2 : 5;
    t.mpc_s = benchutil::time_seconds([&] {
      for (int i = 0; i < reps; ++i) {
        auto triples = make_beaver_triples<F>(m, rng);
        auto ext = prover.build_extended_input(triples, rng);
        std::vector<F> flat(sc.encoding);
        flat.insert(flat.end(), ext.begin(), ext.end());
        auto cs = share_vector_compressed<F>(flat, 5, rng);
        volatile size_t sink = cs.explicit_share.size();
        (void)sink;
      }
    }) / reps;
  }

  // NIZK client: one Pedersen commitment + OR proof per mul gate (the
  // proofs replace each bit/product check). Linear in M with a large
  // constant; measure a slice and scale for the big scenarios.
  if (run_nizk) {
    const auto& params = ec::PedersenParams::instance();
    size_t sample = std::min<size_t>(m, 64);
    double per_proof = benchutil::time_seconds([&] {
      for (size_t i = 0; i < sample; ++i) {
        auto cb = ec::prove_bit(params, static_cast<int>(i & 1), rng);
        volatile bool sink = cb.commitment.is_infinity();
        (void)sink;
      }
    }, 1) / sample;
    t.nizk_s = per_proof * m;
  }

  // SNARK: the paper's cost model (never run, as in the paper).
  baseline::SnarkCostModel snark;
  t.snark_est_s = snark.client_seconds(sc.encoding.size(), 5);
  return t;
}

}  // namespace
}  // namespace prio

int main() {
  using namespace prio;
  benchutil::header("Figure 7: client encoding time by scenario (seconds)");

  // Keep the AFE objects alive for the duration.
  std::vector<std::unique_ptr<afe::FrequencyCount<F>>> cells;
  std::vector<std::unique_ptr<afe::BitVectorSum<F>>> surveys;
  std::vector<Scenario> scenarios;

  // Cell scenarios: frequency count over G grid cells (G mul gates).
  for (auto [city, cells_n] :
       std::initializer_list<std::pair<const char*, size_t>>{
           {"Cell/Geneva", 64},
           {"Cell/Seattle", 868},
           {"Cell/Chicago", 2424},
           {"Cell/London", 6280},
           {"Cell/Tokyo", 8760}}) {
    cells.push_back(std::make_unique<afe::FrequencyCount<F>>(cells_n));
    scenarios.push_back(
        {city, &cells.back()->valid_circuit(), cells.back()->encode(0)});
  }

  // Browser statistics: count-min sketches sized to the paper's gate
  // counts (LowRes ~80, HighRes ~1410 mul gates), see EXPERIMENTS.md.
  static afe::CountMinSketch<F> low(/*eps=*/std::exp(1.0) / 10, 1.0 / 1024);
  static afe::CountMinSketch<F> high(std::exp(1.0) / 100, 1.0 / (1 << 20));
  scenarios.push_back(
      {"Browser/LowRes", &low.valid_circuit(), low.encode(42)});
  scenarios.push_back(
      {"Browser/HighRes", &high.valid_circuit(), high.encode(42)});

  // Surveys: one bit (or one-hot level) per question.
  for (auto [name, bits] : std::initializer_list<std::pair<const char*, size_t>>{
           {"Survey/Beck-21", 84},     // 21 questions x 4 levels
           {"Survey/PCSI-78", 312},    // 78 questions x 4 levels
           {"Survey/CPI-434", 434}}) {  // 434 booleans
    surveys.push_back(std::make_unique<afe::BitVectorSum<F>>(bits));
    std::vector<u8> v(bits, 0);
    scenarios.push_back({name, &surveys.back()->valid_circuit(),
                         surveys.back()->encode(v)});
  }

  // Regression: Heart (13 mixed-width features summing with target to 70
  // bits -> 174 gates) and BrCa (30 features x 14-bit -> 929 gates).
  static afe::LinearRegression<F> heart(
      std::vector<size_t>{8, 1, 3, 8, 9, 1, 3, 8, 1, 6, 3, 3, 8}, 8);
  static afe::LinearRegression<F> brca(30, 14);
  {
    afe::LinearRegression<F>::Input in;
    in.x = {200, 1, 5, 130, 240, 1, 4, 150, 0, 20, 2, 3, 100};
    in.y = 128;
    scenarios.push_back(
        {"LinReg/Heart", &heart.valid_circuit(), heart.encode(in)});
  }
  {
    afe::LinearRegression<F>::Input in;
    in.x.assign(30, 1000);
    in.y = 9000;
    scenarios.push_back(
        {"LinReg/BrCa", &brca.valid_circuit(), brca.encode(in)});
  }

  std::printf("%-18s %8s %10s %10s %10s %12s\n", "scenario", "xGates",
              "Prio", "Prio-MPC", "NIZK", "SNARK(est)");
  for (const auto& sc : scenarios) {
    auto t = measure(sc, /*run_nizk=*/true);
    std::printf("%-18s %8zu %10.4f %10.4f %10.3f %12.1f\n", sc.name.c_str(),
                sc.circuit->num_mul_gates(), t.prio_s, t.mpc_s, t.nizk_s,
                t.snark_est_s);
  }
  std::printf(
      "\nShape check vs paper Fig. 7: Prio clients run in milliseconds,\n"
      "NIZK is 50-100x slower, the SNARK estimate is ~1000x slower.\n");
  return 0;
}
