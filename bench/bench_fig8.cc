// Figure 8 reproduction: client time to encode one d-dimensional training
// example of 14-bit values for private least-squares regression, for
// d = 2..10, under three schemes:
//
//   No privacy    -- encode + seal to one server
//   No robustness -- encode + secret-share + seal to five servers
//   Prio          -- encode + SNIP proof + share + seal
//
// Expected shape: Prio costs ~50x the no-privacy scheme (SNIP generation
// dominates) but stays around a tenth of a second in absolute terms.

#include <cstdio>

#include "afe/linreg.h"
#include "baseline/no_privacy.h"
#include "baseline/no_robustness.h"
#include "bench_util.h"
#include "core/deployment.h"

namespace prio {
namespace {

using F = Fp64;

afe::LinearRegression<F>::Input example(size_t d) {
  afe::LinearRegression<F>::Input in;
  for (size_t i = 0; i < d; ++i) in.x.push_back(1000 + 13 * i);
  in.y = 9999;
  return in;
}

double t_no_privacy(size_t d, int reps) {
  afe::LinearRegression<F> afe(d, 14);
  baseline::NoPrivacyDeployment<F, afe::LinearRegression<F>> dep(&afe, 1);
  auto in = example(d);
  return benchutil::time_seconds([&] {
           for (int i = 0; i < reps; ++i) {
             auto blob = dep.client_upload(in, i);
             volatile size_t sink = blob.size();
             (void)sink;
           }
         }) /
         reps;
}

double t_no_robustness(size_t d, int reps) {
  afe::LinearRegression<F> afe(d, 14);
  baseline::NoRobustnessDeployment<F, afe::LinearRegression<F>> dep(&afe, 5, 1);
  SecureRng rng(1);
  auto in = example(d);
  return benchutil::time_seconds([&] {
           for (int i = 0; i < reps; ++i) {
             auto blobs = dep.client_upload(in, i, rng);
             volatile size_t sink = blobs[0].size();
             (void)sink;
           }
         }) /
         reps;
}

double t_prio(size_t d, int reps) {
  afe::LinearRegression<F> afe(d, 14);
  PrioDeployment<F, afe::LinearRegression<F>> dep(&afe, {.num_servers = 5});
  SecureRng rng(2);
  auto in = example(d);
  return benchutil::time_seconds([&] {
           for (int i = 0; i < reps; ++i) {
             auto blobs = dep.client_upload(in, i, rng);
             volatile size_t sink = blobs[0].size();
             (void)sink;
           }
         }) /
         reps;
}

}  // namespace
}  // namespace prio

int main() {
  using namespace prio;
  benchutil::header(
      "Figure 8: client encoding time, d-dim 14-bit regression (seconds)");
  std::printf("%4s %8s %12s %14s %12s %10s\n", "d", "xGates", "NoPrivacy",
              "NoRobustness", "Prio", "Prio/NoPriv");
  for (size_t d = 2; d <= 10; d += 2) {
    afe::LinearRegression<F> tmp(d, 14);
    size_t m = tmp.valid_circuit().num_mul_gates();
    double np = t_no_privacy(d, 50);
    double nr = t_no_robustness(d, 50);
    double pr = t_prio(d, 20);
    std::printf("%4zu %8zu %12.6f %14.6f %12.6f %10.1fx\n", d, m, np, nr, pr,
                pr / np);
  }
  std::printf(
      "\nShape check vs paper Fig. 8: Prio costs a large constant factor\n"
      "(~15-50x) over the no-privacy client, driven by SNIP generation; the\n"
      "absolute cost stays far below a second. (The paper reports ~50x on\n"
      "2016 hardware with a FLINT 87-bit field; our 64-bit native field\n"
      "narrows the gap.)\n");
  return 0;
}
