// Durable store bench: WAL append throughput (submissions/second) per
// fsync policy, plus snapshot publication latency -- the numbers an
// operator needs to pick --fsync for a deployment (see README "Durability
// & crash recovery"). Writes BENCH_store.json (or --out <path>) so CI
// accumulates the trajectory next to BENCH_hotpath.json; --smoke shrinks
// the workload for the CI leg.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "afe/bitvec_sum.h"
#include "bench_util.h"
#include "core/client.h"
#include "crypto/rng.h"
#include "net/wire.h"
#include "store/recovery.h"
#include "store/snapshot.h"
#include "store/wal.h"

namespace prio {
namespace {

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/prio_bench_store_XXXXXX";
    char* got = ::mkdtemp(tmpl);
    if (got == nullptr) {
      std::fprintf(stderr, "bench_store: mkdtemp failed (is /tmp writable?)\n");
      std::exit(1);
    }
    path = got;
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

}  // namespace
}  // namespace prio

int main(int argc, char** argv) {
  using namespace prio;
  using F = Fp64;
  using Afe = afe::BitVectorSum<F>;

  bool smoke = false;
  std::string out_path = "BENCH_store.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }
  const bool full = benchutil::full_mode();

  // A representative sealed submission blob: one server's share of a
  // 64-bit bit-vector upload (seq prefix + AEAD-sealed PRG seed), the
  // dominant record the intake WAL carries.
  const size_t kLen = 64;
  Afe afe(kLen);
  PrioClient<F, Afe> encoder(&afe, /*servers=*/3, /*master_seed=*/1);
  SecureRng rng(42);
  std::vector<u8> bits(kLen, 1);
  auto blobs = encoder.upload(bits, /*client_id=*/7, rng);
  const std::vector<u8>& blob = blobs[0];

  const size_t kAppends = smoke ? 2'000 : (full ? 200'000 : 50'000);
  std::printf("== bench_store: WAL append throughput ==\n");
  std::printf("blob bytes: %zu, appends per policy: %zu%s\n\n", blob.size(),
              kAppends, smoke ? "  [smoke]" : "");

  benchutil::JsonWriter json;
  json.kv("bench", std::string("store"));
  json.kv("blob_bytes", static_cast<unsigned long long>(blob.size()));
  json.kv("appends", static_cast<unsigned long long>(kAppends));

  for (store::FsyncPolicy policy :
       {store::FsyncPolicy::kOff, store::FsyncPolicy::kEpoch,
        store::FsyncPolicy::kAlways}) {
    // fsync-per-append is orders of magnitude slower; trim its volume so
    // the bench stays inside CI budgets while still measuring the policy.
    const size_t n = policy == store::FsyncPolicy::kAlways
                         ? std::min<size_t>(kAppends, smoke ? 200 : 2'000)
                         : kAppends;
    TempDir dir;
    store::EpochStore est(dir.path, policy);
    est.open_segment(0);
    const double secs = benchutil::time_seconds(
        [&] {
          for (size_t i = 0; i < n; ++i) {
            est.append_intake(/*client_id=*/i, /*seq=*/0, blob);
          }
          est.rotate(1, std::vector<u8>(64, 0));  // epoch-boundary sync
        },
        /*repeats=*/1);
    const double rate = static_cast<double>(n) / secs;
    std::printf("  fsync=%-7s %12.0f appends/s  (%zu appends in %.3fs)\n",
                store::fsync_policy_name(policy), rate, n, secs);
    json.kv(std::string("wal_appends_per_s_fsync_") +
                store::fsync_policy_name(policy),
            rate);
  }

  // Snapshot publication: the epoch-boundary write-temp-rename-manifest
  // dance for a state blob the size a busy server might hold (accumulator
  // + ~64k replay floors ~= 1 MiB).
  {
    TempDir dir;
    store::SnapshotStore snaps(dir.path);
    std::vector<u8> state(1 << 20, 0x5a);
    const int reps = smoke ? 5 : 50;
    const double secs = benchutil::time_seconds(
        [&] {
          for (int i = 0; i < reps; ++i) {
            snaps.write(static_cast<u32>(i), state);
          }
        },
        /*repeats=*/1);
    const double ms = 1e3 * secs / reps;
    std::printf("  snapshot publish (1 MiB): %.2f ms\n", ms);
    json.kv("snapshot_publish_1mib_ms", ms);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f != nullptr) {
    const std::string text = json.finish();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
  }
  return 0;
}
