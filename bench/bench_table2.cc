// Table 2 reproduction: asymptotic comparison of NIZK vs SNARK vs Prio
// (SNIP) for proving that every component of x in F^M is a 0/1 value.
//
// The paper's table is analytic (Theta-notation); we regenerate it with
// *measured operation counts* from the opcount instrumentation, for several
// values of M, so the scalings are visible empirically:
//   - client exps (group scalar mults), client field muls, proof length
//   - server exps, server field muls, server data transfer
//
// Expected shapes (Table 2):            NIZK       SNARK       Prio/SNIP
//   client exps                          M           M            0
//   client muls                          0        M log M      M log M
//   proof length                         M           1            M
//   server exps/pairings                 M           1            0
//   server muls                          0           M         M log M
//   server data transfer                 M           1            1

#include <cinttypes>
#include <cstdio>

#include "afe/bitvec_sum.h"
#include "baseline/nizk.h"
#include "bench_util.h"
#include "core/deployment.h"

namespace prio {
namespace {

using F = Fp64;

struct Row {
  size_t m;
  u64 nizk_client_exp, nizk_client_mul, nizk_proof_bytes;
  u64 nizk_server_exp, nizk_server_transfer;
  u64 snip_client_exp, snip_client_mul, snip_proof_bytes;
  u64 snip_server_exp, snip_server_mul, snip_server_transfer;
};

Row measure(size_t m) {
  Row row{};
  row.m = m;
  SecureRng rng(1);
  afe::BitVectorSum<F> afe(m);
  std::vector<u8> bits(m, 1);

  // ---- NIZK client ----
  {
    baseline::NizkDeployment<F> nizk(&afe, 2);
    OpCountScope scope;
    auto up = nizk.client_upload(bits, rng);
    auto delta = scope.delta();
    row.nizk_client_exp = delta.group_exp;
    row.nizk_client_mul = delta.field_mul;
    row.nizk_proof_bytes = up.proof_blob.size();
    // ---- NIZK server ----
    OpCountScope sscope;
    nizk.process_submission(0, up);
    auto sdelta = sscope.delta();
    row.nizk_server_exp = sdelta.group_exp;
    row.nizk_server_transfer = nizk.network().total_bytes();
  }

  // ---- SNIP client ----
  {
    SnipProver<F> prover(&afe.valid_circuit());
    auto encoding = afe.encode(bits);
    OpCountScope scope;
    auto ext = prover.build_extended_input(encoding, rng);
    auto delta = scope.delta();
    row.snip_client_exp = delta.group_exp;
    row.snip_client_mul = delta.field_mul;
    // Proof portion of the extended vector (everything beyond x).
    row.snip_proof_bytes = (ext.size() - m) * F::kByteLen;

    // ---- SNIP servers ----
    VerificationContext<F> ctx(&afe.valid_circuit(), 2, 7);
    auto shares = share_vector<F>(ext, 2, rng);
    OpCountScope sscope;
    bool ok = snip_verify_all(ctx, shares);
    auto sdelta = sscope.delta();
    require(ok, "bench_table2: honest proof rejected");
    row.snip_server_exp = sdelta.group_exp;
    row.snip_server_mul = sdelta.field_mul;
    // Server transfer: the four broadcast field elements per server
    // (d, e, sigma, out) -- constant.
    row.snip_server_transfer = 4 * F::kByteLen;
  }
  return row;
}

}  // namespace
}  // namespace prio

int main() {
  using namespace prio;
  benchutil::header(
      "Table 2: operation counts, prove x in {0,1}^M (measured)");
  std::printf(
      "%8s | %14s %14s %12s | %14s %14s %12s\n", "M",
      "NIZK cl.exps", "NIZK sv.exps", "NIZK proofB",
      "SNIP cl.muls", "SNIP sv.muls", "SNIP xferB");
  std::vector<size_t> ms = {16, 64, 256};
  if (benchutil::full_mode()) ms.push_back(1024);
  for (size_t m : ms) {
    auto r = measure(m);
    std::printf("%8zu | %14" PRIu64 " %14" PRIu64 " %12" PRIu64
                " | %14" PRIu64 " %14" PRIu64 " %12" PRIu64 "\n",
                r.m, r.nizk_client_exp, r.nizk_server_exp, r.nizk_proof_bytes,
                r.snip_client_mul, r.snip_server_mul, r.snip_server_transfer);
    std::printf("%8s | client exps: NIZK=%" PRIu64 " SNIP=%" PRIu64
                " | SNIP proof bytes=%" PRIu64 " (Theta(M))\n",
                "", r.nizk_client_exp, r.snip_client_exp, r.snip_proof_bytes);
  }
  std::printf(
      "\nShape check (Table 2): NIZK exps grow ~M on both sides; SNIP uses 0\n"
      "group exps, Theta(M log M) field muls, and constant server transfer.\n"
      "SNARK (not run; see bench_fig7 cost model): 1 server exp, 288-byte "
      "proof.\n");
  return 0;
}
