// Figure 4 reproduction: server throughput (submissions/s) vs submission
// length L, for the five schemes of Section 6.1:
//
//   No privacy    -- one server, sealed plaintext uploads
//   No robustness -- 5-server secret sharing, no proofs
//   Prio          -- SNIP verification (this paper)
//   Prio-MPC      -- server-side Valid evaluation (Section 4.4)
//   NIZK          -- per-component discrete-log OR proofs
//
// Workload: each client submits a vector of L zero/one integers; the
// servers sum the vectors. Throughput = submissions / max per-server busy
// time (clients stream over persistent connections in the paper, so the
// pipeline is compute-bound). Expected shape: No privacy >= No robustness
// >= Prio ~ Prio-MPC >> NIZK, with Prio within ~5x of no-privacy and NIZK
// 1-2 orders of magnitude below.

#include <cstdio>

#include "afe/bitvec_sum.h"
#include "baseline/nizk.h"
#include "baseline/no_privacy.h"
#include "baseline/no_robustness.h"
#include "bench_util.h"
#include "core/deployment.h"
#include "core/mpc_deployment.h"

namespace prio {
namespace {

using F = Fp64;

std::vector<u8> make_bits(size_t l) {
  std::vector<u8> bits(l);
  for (size_t i = 0; i < l; ++i) bits[i] = static_cast<u8>(i & 1);
  return bits;
}

double rate_no_privacy(size_t l, int n) {
  afe::BitVectorSum<F> afe(l);
  baseline::NoPrivacyDeployment<F, afe::BitVectorSum<F>> dep(&afe, 1);
  auto bits = make_bits(l);
  std::vector<std::vector<u8>> blobs;
  for (int i = 0; i < n; ++i) blobs.push_back(dep.client_upload(bits, i));
  for (int i = 0; i < n; ++i) dep.process_submission(i, blobs[i]);
  return n / (dep.clocks().max_busy_us() / 1e6);
}

double rate_no_robustness(size_t l, int n, size_t s = 5) {
  afe::BitVectorSum<F> afe(l);
  baseline::NoRobustnessDeployment<F, afe::BitVectorSum<F>> dep(&afe, s, 1);
  SecureRng rng(1);
  auto bits = make_bits(l);
  std::vector<std::vector<std::vector<u8>>> blobs;
  for (int i = 0; i < n; ++i) blobs.push_back(dep.client_upload(bits, i, rng));
  for (int i = 0; i < n; ++i) dep.process_submission(i, blobs[i]);
  // BusyClock tracks each simulated server separately; throughput is work
  // over the busiest server's time (the servers run in parallel for real).
  return n / (dep.clocks().max_busy_us() / 1e6);
}

double rate_prio(size_t l, int n, size_t s = 5) {
  afe::BitVectorSum<F> afe(l);
  PrioDeployment<F, afe::BitVectorSum<F>> dep(&afe, {.num_servers = s});
  SecureRng rng(2);
  auto bits = make_bits(l);
  std::vector<std::vector<std::vector<u8>>> blobs;
  for (int i = 0; i < n; ++i) blobs.push_back(dep.client_upload(bits, i, rng));
  dep.clocks().reset();
  for (int i = 0; i < n; ++i) dep.process_submission(i, blobs[i]);
  return n / (dep.clocks().max_busy_us() / 1e6);
}

double rate_prio_mpc(size_t l, int n, size_t s = 5) {
  afe::BitVectorSum<F> afe(l);
  PrioMpcDeployment<F, afe::BitVectorSum<F>> dep(&afe, {.num_servers = s});
  SecureRng rng(3);
  auto bits = make_bits(l);
  std::vector<std::vector<std::vector<u8>>> blobs;
  for (int i = 0; i < n; ++i) blobs.push_back(dep.client_upload(bits, i, rng));
  dep.clocks().reset();
  for (int i = 0; i < n; ++i) dep.process_submission(i, blobs[i]);
  return n / (dep.clocks().max_busy_us() / 1e6);
}

double rate_nizk(size_t l, int n, size_t s = 5) {
  afe::BitVectorSum<F> afe(l);
  baseline::NizkDeployment<F> dep(&afe, s);
  SecureRng rng(4);
  auto bits = make_bits(l);
  std::vector<baseline::NizkDeployment<F>::Upload> ups;
  for (int i = 0; i < n; ++i) ups.push_back(dep.client_upload(bits, rng));
  dep.clocks().reset();
  for (int i = 0; i < n; ++i) dep.process_submission(i, ups[i]);
  return n / (dep.clocks().max_busy_us() / 1e6);
}

}  // namespace
}  // namespace prio

int main() {
  using namespace prio;
  benchutil::header("Figure 4: throughput vs submission length (subs/s)");
  const bool full = benchutil::full_mode();
  const size_t max_log = full ? 16 : 12;
  const size_t nizk_max_log = full ? 10 : 8;
  std::printf("%8s %12s %14s %12s %12s %12s\n", "L", "NoPrivacy",
              "NoRobustness", "Prio", "Prio-MPC", "NIZK");
  for (size_t lg = 4; lg <= max_log; lg += 2) {
    size_t l = size_t{1} << lg;
    int n = l >= 4096 ? 4 : 16;
    double np = rate_no_privacy(l, 4 * n);
    double nr = rate_no_robustness(l, n);
    double pr = rate_prio(l, n);
    double pm = rate_prio_mpc(l, std::max(2, n / 4));
    double nz;
    char nz_buf[32];
    if (lg <= nizk_max_log) {
      nz = rate_nizk(l, 2);
      std::snprintf(nz_buf, sizeof(nz_buf), "%12.2f", nz);
    } else {
      // NIZK cost is linear in L: extrapolate from the largest measured
      // point (marked with *), as running it would take minutes.
      nz = rate_nizk(size_t{1} << nizk_max_log, 2) /
           static_cast<double>(l >> nizk_max_log);
      std::snprintf(nz_buf, sizeof(nz_buf), "%11.2f*", nz);
    }
    std::printf("%8zu %12.1f %14.1f %12.1f %12.1f %s\n", l, np, nr, pr, pm,
                nz_buf);
  }
  std::printf(
      "\n(* = extrapolated linearly from the largest measured NIZK point.)\n"
      "Shape check vs paper Fig. 4: Prio within ~5x of no-privacy across\n"
      "lengths; NIZK more than an order of magnitude below Prio.\n");
  return 0;
}
