// Microbenchmarks (google-benchmark): field multiplication (the header row
// of Table 3), NTT, ChaCha20, SHA-256, secp256k1 scalar multiplication and
// OR-proof prove/verify (the primitive costs behind the NIZK baseline).

#include <benchmark/benchmark.h>

#include "crypto/chacha20.h"
#include "crypto/rng.h"
#include "crypto/schnorr_or.h"
#include "crypto/sha256.h"
#include "field/field.h"
#include "poly/ntt.h"

namespace prio {
namespace {

template <typename F>
void BM_FieldMul(benchmark::State& state) {
  SecureRng rng(1);
  F a = rng.field_element<F>();
  F b = rng.field_element<F>();
  for (auto _ : state) {
    a = a * b;
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK_TEMPLATE(BM_FieldMul, Fp64);
BENCHMARK_TEMPLATE(BM_FieldMul, Fp128);

template <typename F>
void BM_FieldInv(benchmark::State& state) {
  SecureRng rng(2);
  F a = rng.field_element<F>();
  for (auto _ : state) {
    a = a.inv() + F::one();
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK_TEMPLATE(BM_FieldInv, Fp64);
BENCHMARK_TEMPLATE(BM_FieldInv, Fp128);

template <typename F>
void BM_Ntt(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  NttDomain<F> dom(n);
  SecureRng rng(3);
  std::vector<F> data(n);
  for (auto& x : data) x = rng.field_element<F>();
  for (auto _ : state) {
    dom.forward(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetComplexityN(static_cast<i64>(n));
}
BENCHMARK_TEMPLATE(BM_Ntt, Fp64)->RangeMultiplier(4)->Range(64, 16384);
BENCHMARK_TEMPLATE(BM_Ntt, Fp128)->RangeMultiplier(4)->Range(64, 16384);

void BM_ChaCha20Block(benchmark::State& state) {
  std::vector<u8> key(32, 1), nonce(12, 2);
  u8 out[64];
  u32 ctr = 0;
  for (auto _ : state) {
    ChaCha20::block(key, ctr++, nonce, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * 64);
}
BENCHMARK(BM_ChaCha20Block);

void BM_Sha256(benchmark::State& state) {
  std::vector<u8> data(static_cast<size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    auto d = Sha256::digest(data);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024);

void BM_EcScalarMul(benchmark::State& state) {
  SecureRng rng(4);
  auto g = ec::Point::generator();
  u8 buf[32];
  rng.fill(buf);
  auto k = ec::Scalar::from_u256(ec::U256::from_bytes_be(buf));
  for (auto _ : state) {
    auto p = g.mul(k);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_EcScalarMul);

void BM_EcFixedBaseMul(benchmark::State& state) {
  SecureRng rng(5);
  static const ec::FixedBaseTable table(ec::Point::generator());
  u8 buf[32];
  rng.fill(buf);
  auto k = ec::Scalar::from_u256(ec::U256::from_bytes_be(buf));
  for (auto _ : state) {
    auto p = table.mul(k);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_EcFixedBaseMul);

void BM_OrProofProve(benchmark::State& state) {
  SecureRng rng(6);
  const auto& params = ec::PedersenParams::instance();
  int bit = 0;
  for (auto _ : state) {
    auto cb = ec::prove_bit(params, bit ^= 1, rng);
    benchmark::DoNotOptimize(cb);
  }
}
BENCHMARK(BM_OrProofProve);

void BM_OrProofVerify(benchmark::State& state) {
  SecureRng rng(7);
  const auto& params = ec::PedersenParams::instance();
  auto cb = ec::prove_bit(params, 1, rng);
  for (auto _ : state) {
    bool ok = ec::verify_bit(params, cb.commitment, cb.proof);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_OrProofVerify);

}  // namespace
}  // namespace prio

BENCHMARK_MAIN();
