// Figure 5 reproduction: throughput vs number of servers (2..10), with
// every server in the same datacenter, summing 1024 one-bit integers per
// submission (the anonymous-survey workload).
//
// Expected shape: adding servers barely affects throughput for every
// scheme, because (a) Prio rotates the leader role so the per-submission
// checking work is load-balanced, and (b) the NIZK scheme splits proof
// verification across servers.

#include <cstdio>

#include "afe/bitvec_sum.h"
#include "baseline/nizk.h"
#include "baseline/no_robustness.h"
#include "bench_util.h"
#include "core/deployment.h"
#include "core/mpc_deployment.h"

namespace prio {
namespace {

using F = Fp64;
constexpr size_t kL = 1024;

std::vector<u8> make_bits() {
  std::vector<u8> bits(kL);
  for (size_t i = 0; i < kL; ++i) bits[i] = static_cast<u8>(i % 2);
  return bits;
}

double rate_prio(size_t s, int n) {
  afe::BitVectorSum<F> afe(kL);
  PrioDeployment<F, afe::BitVectorSum<F>> dep(
      &afe, {.num_servers = s, .latency_us = 250});
  SecureRng rng(1);
  auto bits = make_bits();
  std::vector<std::vector<std::vector<u8>>> blobs;
  for (int i = 0; i < n; ++i) blobs.push_back(dep.client_upload(bits, i, rng));
  dep.clocks().reset();
  for (int i = 0; i < n; ++i) dep.process_submission(i, blobs[i]);
  return n / (dep.clocks().max_busy_us() / 1e6);
}

double rate_prio_mpc(size_t s, int n) {
  afe::BitVectorSum<F> afe(kL);
  PrioMpcDeployment<F, afe::BitVectorSum<F>> dep(
      &afe, {.num_servers = s, .latency_us = 250});
  SecureRng rng(2);
  auto bits = make_bits();
  std::vector<std::vector<std::vector<u8>>> blobs;
  for (int i = 0; i < n; ++i) blobs.push_back(dep.client_upload(bits, i, rng));
  dep.clocks().reset();
  for (int i = 0; i < n; ++i) dep.process_submission(i, blobs[i]);
  return n / (dep.clocks().max_busy_us() / 1e6);
}

double rate_no_robustness(size_t s, int n) {
  afe::BitVectorSum<F> afe(kL);
  baseline::NoRobustnessDeployment<F, afe::BitVectorSum<F>> dep(&afe, s, 1,
                                                                250);
  SecureRng rng(3);
  auto bits = make_bits();
  std::vector<std::vector<std::vector<u8>>> blobs;
  for (int i = 0; i < n; ++i) blobs.push_back(dep.client_upload(bits, i, rng));
  for (int i = 0; i < n; ++i) dep.process_submission(i, blobs[i]);
  return n / (dep.clocks().max_busy_us() / 1e6);
}

double rate_nizk(size_t s, int n) {
  afe::BitVectorSum<F> afe(kL);
  baseline::NizkDeployment<F> dep(&afe, s, 250);
  SecureRng rng(4);
  auto bits = make_bits();
  std::vector<baseline::NizkDeployment<F>::Upload> ups;
  for (int i = 0; i < n; ++i) ups.push_back(dep.client_upload(bits, rng));
  dep.clocks().reset();
  for (int i = 0; i < n; ++i) dep.process_submission(i, ups[i]);
  return n / (dep.clocks().max_busy_us() / 1e6);
}

}  // namespace
}  // namespace prio

int main() {
  using namespace prio;
  benchutil::header(
      "Figure 5: throughput vs number of servers (L=1024 bits, subs/s)");
  const bool full = benchutil::full_mode();
  const int n = full ? 16 : 8;
  std::printf("%8s %14s %12s %12s %12s\n", "servers", "NoRobustness", "Prio",
              "Prio-MPC", "NIZK");
  for (size_t s = 2; s <= 10; s += 2) {
    double nr = rate_no_robustness(s, n);
    double pr = rate_prio(s, n);
    double pm = rate_prio_mpc(s, std::max(2, n / 4));
    double nz = rate_nizk(s, 2);
    std::printf("%8zu %14.1f %12.1f %12.1f %12.2f\n", s, nr, pr, pm, nz);
  }
  std::printf(
      "\nShape check vs paper Fig. 5: each scheme's throughput is roughly\n"
      "flat in the number of servers (leader rotation / verification\n"
      "load-balancing), and the ordering NoRobustness > Prio ~ Prio-MPC >\n"
      "NIZK is preserved.\n");
  return 0;
}
