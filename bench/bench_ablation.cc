// Ablation bench: measures the three Appendix I optimizations that
// DESIGN.md calls out, by running each design choice against its naive
// alternative.
//
//   A. PRG share compression: client upload bytes with seeds vs with s
//      full share vectors (paper: sL -> L + O(1) field elements).
//   B. Verification without interpolation: evaluating the share of a
//      degree-<N polynomial at r via the precomputed Lagrange row (Theta(N)
//      muls) vs inverse-NTT interpolation + Horner (Theta(N log N)).
//   C. Batched output check: publishing one random linear combination of
//      the output wires vs publishing every output share.

#include <cstdio>

#include "afe/bitvec_sum.h"
#include "bench_util.h"
#include "core/deployment.h"

namespace prio {
namespace {

using F = Fp64;

void ablation_prg_compression() {
  benchutil::header("Ablation A: PRG share compression (client upload bytes)");
  std::printf("%8s %10s %14s %14s %8s\n", "L", "servers", "compressed",
              "uncompressed", "saving");
  SecureRng rng(1);
  for (size_t l : {256, 1024, 4096}) {
    afe::BitVectorSum<F> afe(l);
    SnipProver<F> prover(&afe.valid_circuit());
    std::vector<u8> bits(l, 1);
    auto ext = prover.build_extended_input(afe.encode(bits), rng);
    const size_t s = 5;
    size_t compressed = (s - 1) * 32 + ext.size() * F::kByteLen;
    size_t plain = s * ext.size() * F::kByteLen;
    std::printf("%8zu %10zu %14zu %14zu %7.2fx\n", l, s, compressed, plain,
                static_cast<double>(plain) / compressed);
  }
}

void ablation_lagrange_row() {
  benchutil::header(
      "Ablation B: evaluate-at-r via Lagrange row vs NTT interpolation");
  std::printf("%8s %14s %16s %8s\n", "N", "row (us)", "interp (us)", "speedup");
  SecureRng rng(2);
  for (size_t n : {256, 1024, 4096, 16384}) {
    NttDomain<F> dom(n);
    std::vector<F> evals(n);
    for (auto& x : evals) x = rng.field_element<F>();
    F r = rng.field_element<F>();
    auto row = lagrange_eval_row(dom, r);

    int reps = 200;
    double row_us = benchutil::time_seconds([&] {
                      F acc = F::zero();
                      for (int i = 0; i < reps; ++i) {
                        acc += inner_product(row, std::span<const F>(evals));
                      }
                      volatile u64 sink = acc.is_zero();
                      (void)sink;
                    }) /
                    reps * 1e6;
    double interp_us = benchutil::time_seconds([&] {
                         F acc = F::zero();
                         for (int i = 0; i < reps; ++i) {
                           auto coeffs = evals;
                           dom.inverse(coeffs);
                           acc += poly_eval(coeffs, r);
                         }
                         volatile u64 sink = acc.is_zero();
                         (void)sink;
                       }) /
                       reps * 1e6;
    std::printf("%8zu %14.1f %16.1f %7.2fx\n", n, row_us, interp_us,
                interp_us / row_us);
  }
  std::printf("(The row also amortizes across Q submissions per refresh;\n"
              "the naive interpolation would run per submission.)\n");
}

void ablation_output_batching() {
  benchutil::header(
      "Ablation C: batched output test vs per-output publication (bytes)");
  std::printf("%8s %16s %16s %8s\n", "outputs", "batched", "per-output",
              "saving");
  for (size_t outs : {16, 256, 4096}) {
    // Batched: each server publishes 1 field element for all outputs.
    size_t batched = F::kByteLen;
    size_t per_output = outs * F::kByteLen;
    std::printf("%8zu %16zu %16zu %7.0fx\n", outs, batched, per_output,
                static_cast<double>(per_output) / batched);
  }
}

}  // namespace
}  // namespace prio

int main() {
  prio::ablation_prg_compression();
  prio::ablation_lagrange_row();
  prio::ablation_output_batching();
  return 0;
}
