// Table 9 reproduction: throughput (client requests/s) of a five-server
// cluster running private d-dimensional least-squares regression, for
// d = 2..12, under: no privacy / no robustness / Prio. Also prints the
// privacy cost (NoPriv/NoRob), the robustness cost (NoRob/Prio) and the
// total cost (NoPriv/Prio), matching the paper's columns.
//
// Paper's numbers (global 5-server cluster):
//   d=2:  14688 / 2687 / 2608  (priv 5.5x, robust 1.0x, total 5.6x)
//   d=12: 15189 / 2547 / 1312  (priv 6.0x, robust 1.9x, total 11.6x)
// Expected shape: privacy costs ~5-6x, robustness 1-2x growing with d.

#include <cstdio>

#include "afe/linreg.h"
#include "baseline/no_privacy.h"
#include "baseline/no_robustness.h"
#include "bench_util.h"
#include "core/deployment.h"

namespace prio {
namespace {

using F = Fp64;

afe::LinearRegression<F>::Input example(size_t d, u64 seed) {
  afe::LinearRegression<F>::Input in;
  for (size_t i = 0; i < d; ++i) in.x.push_back((seed * 31 + i * 7) % 16384);
  in.y = (seed * 17) % 16384;
  return in;
}

struct Rates {
  double no_priv, no_rob, prio;
};

Rates measure(size_t d, int n) {
  Rates r{};
  afe::LinearRegression<F> afe(d, 14);
  {
    baseline::NoPrivacyDeployment<F, afe::LinearRegression<F>> dep(&afe, 1);
    std::vector<std::vector<u8>> blobs;
    for (int i = 0; i < 4 * n; ++i) {
      blobs.push_back(dep.client_upload(example(d, i), i));
    }
    for (int i = 0; i < 4 * n; ++i) dep.process_submission(i, blobs[i]);
    r.no_priv = 4 * n / (dep.clocks().max_busy_us() / 1e6);
  }
  {
    baseline::NoRobustnessDeployment<F, afe::LinearRegression<F>> dep(&afe, 5,
                                                                      1);
    SecureRng rng(1);
    std::vector<std::vector<std::vector<u8>>> blobs;
    for (int i = 0; i < 2 * n; ++i) {
      blobs.push_back(dep.client_upload(example(d, i), i, rng));
    }
    for (int i = 0; i < 2 * n; ++i) dep.process_submission(i, blobs[i]);
    r.no_rob = 2 * n / (dep.clocks().max_busy_us() / 1e6);
  }
  {
    PrioDeployment<F, afe::LinearRegression<F>> dep(&afe, {.num_servers = 5});
    SecureRng rng(2);
    std::vector<std::vector<std::vector<u8>>> blobs;
    for (int i = 0; i < n; ++i) {
      blobs.push_back(dep.client_upload(example(d, i), i, rng));
    }
    dep.clocks().reset();
    for (int i = 0; i < n; ++i) dep.process_submission(i, blobs[i]);
    require(dep.accepted() == static_cast<size_t>(n),
            "bench_table9: honest submissions rejected");
    r.prio = n / (dep.clocks().max_busy_us() / 1e6);
  }
  return r;
}

}  // namespace
}  // namespace prio

int main() {
  using namespace prio;
  benchutil::header(
      "Table 9: 5-server throughput, d-dim private regression (reqs/s)");
  const int n = benchutil::full_mode() ? 128 : 48;
  std::printf("%4s %10s %10s %10s | %10s %12s %10s\n", "d", "NoPriv", "NoRob",
              "Prio", "Priv.cost", "Robust.cost", "Tot.cost");
  for (size_t d = 2; d <= 12; d += 2) {
    auto r = measure(d, n);
    std::printf("%4zu %10.0f %10.0f %10.0f | %9.1fx %11.1fx %9.1fx\n", d,
                r.no_priv, r.no_rob, r.prio, r.no_priv / r.no_rob,
                r.no_rob / r.prio, r.no_priv / r.prio);
  }
  std::printf(
      "\nShape check vs paper Table 9: robustness cost grows with d and the\n"
      "total cost with it. NOTE: the paper's ~5.5x privacy cost is dominated\n"
      "by WAN coordination across five datacenters, which a compute-time\n"
      "simulation cannot exhibit; our NoPriv/NoRob ratio is ~1x. The\n"
      "robustness cost (NoRob vs Prio), which is the paper's contribution,\n"
      "shows the right shape. See EXPERIMENTS.md.\n");
  return 0;
}
