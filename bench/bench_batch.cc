// Batched vs serial verification throughput (Section 6 / Appendix I's
// batching argument, measured): pre-generates N client uploads, then
// verifies them (a) one at a time through process_submission and (b) in
// batches of Q through process_batch at 1, 2, 4, 8 threads. Also reports
// the round/message coalescing and checks that batched and serial paths
// make identical accept/reject decisions on a mixed valid/invalid batch.
//
// Thread-scaling numbers are only meaningful on a multi-core host; the
// harness prints the detected hardware concurrency alongside.

#include <cstdio>
#include <thread>

#include "afe/bitvec_sum.h"
#include "bench_util.h"
#include "core/deployment.h"

namespace prio {
namespace {

using F = Fp64;
using Afe = afe::BitVectorSum<F>;

struct Workload {
  std::vector<Submission> subs;
  std::vector<u8> expected;  // verdict per submission
};

Workload make_workload(const Afe& afe, size_t n, size_t num_servers,
                       bool with_invalid) {
  // Client-side deployment: same master seed as the measured deployments,
  // so the sealed blobs open there.
  PrioDeployment<F, Afe> client_side(&afe, {.num_servers = num_servers});
  SecureRng rng(42);
  Workload w;
  w.subs.reserve(n);
  const size_t len = afe.k_prime();
  for (u64 cid = 0; cid < n; ++cid) {
    std::vector<u8> bits(len, 0);
    bits[cid % len] = 1;
    auto blobs = client_side.client_upload(bits, cid, rng);
    u8 expect = 1;
    if (with_invalid && cid % 5 == 3) {
      blobs[cid % num_servers][12] ^= 1;  // tampered ciphertext
      expect = 0;
    }
    w.subs.push_back({cid, std::move(blobs)});
    w.expected.push_back(expect);
  }
  return w;
}

double serial_rate(const Afe& afe, const Workload& w, size_t num_servers) {
  PrioDeployment<F, Afe> dep(&afe, {.num_servers = num_servers});
  double secs = benchutil::time_seconds([&] {
    for (const auto& sub : w.subs) dep.process_submission(sub.client_id, sub.blobs);
  }, 1);
  return static_cast<double>(w.subs.size()) / secs;
}

double batch_rate(const Afe& afe, const Workload& w, size_t num_servers,
                  size_t threads, size_t batch_size) {
  PrioDeployment<F, Afe> dep(
      &afe, {.num_servers = num_servers, .batch_threads = threads});
  double secs = benchutil::time_seconds([&] {
    for (size_t off = 0; off < w.subs.size(); off += batch_size) {
      const size_t q = std::min(batch_size, w.subs.size() - off);
      dep.process_batch(std::span<const Submission>(w.subs.data() + off, q));
    }
  }, 1);
  return static_cast<double>(w.subs.size()) / secs;
}

}  // namespace
}  // namespace prio

int main() {
  using namespace prio;
  const bool full = benchutil::full_mode();
  const size_t kServers = 3;
  const size_t kLen = full ? 128 : 64;      // submission length (bits)
  const size_t kN = full ? 4096 : 1024;     // submissions per measurement
  const size_t kBatch = 64;                 // Q
  Afe afe(kLen);

  benchutil::header("batched vs serial SNIP verification");
  std::printf("servers=%zu  submission_len=%zu  N=%zu  Q=%zu  hw_threads=%u\n",
              kServers, kLen, kN, kBatch,
              std::thread::hardware_concurrency());

  auto w = make_workload(afe, kN, kServers, /*with_invalid=*/false);

  const double serial = serial_rate(afe, w, kServers);
  std::printf("\n%-28s %12.0f subs/s   (baseline)\n",
              "serial process_submission", serial);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    const double rate = batch_rate(afe, w, kServers, threads, kBatch);
    std::printf("process_batch, %2zu thread%s %12.0f subs/s   (%.2fx serial)\n",
                threads, threads == 1 ? " " : "s", rate, rate / serial);
  }

  // Round/message coalescing at Q=64.
  {
    PrioDeployment<F, Afe> dep(&afe, {.num_servers = kServers});
    dep.process_batch(std::span<const Submission>(w.subs.data(), kBatch));
    const double per_sub_rounds =
        static_cast<double>(dep.network().rounds()) / kBatch;
    std::printf("\nbatch of %zu: %llu wire rounds (%.3f/submission; serial pays 4),"
                " %llu wire messages carrying %llu protocol messages\n",
                kBatch, static_cast<unsigned long long>(dep.network().rounds()),
                per_sub_rounds,
                static_cast<unsigned long long>(dep.network().total_messages()),
                static_cast<unsigned long long>(
                    dep.network().total_logical_messages()));
  }

  // Correctness gate: batched and serial must agree on a mixed batch.
  auto mixed = make_workload(afe, 200, kServers, /*with_invalid=*/true);
  PrioDeployment<F, Afe> serial_dep(&afe, {.num_servers = kServers});
  PrioDeployment<F, Afe> batch_dep(&afe, {.num_servers = kServers});
  std::vector<u8> serial_verdicts, batch_verdicts;
  for (const auto& sub : mixed.subs) {
    serial_verdicts.push_back(
        serial_dep.process_submission(sub.client_id, sub.blobs) ? 1 : 0);
  }
  for (size_t off = 0; off < mixed.subs.size(); off += kBatch) {
    const size_t q = std::min(kBatch, mixed.subs.size() - off);
    auto v = batch_dep.process_batch(
        std::span<const Submission>(mixed.subs.data() + off, q));
    batch_verdicts.insert(batch_verdicts.end(), v.begin(), v.end());
  }
  const bool decisions_match = serial_verdicts == batch_verdicts &&
                               serial_verdicts == mixed.expected;
  std::printf("mixed valid/invalid batch (%zu subs, %zu invalid): "
              "decisions %s\n",
              mixed.subs.size(),
              static_cast<size_t>(std::count(mixed.expected.begin(),
                                             mixed.expected.end(), 0)),
              decisions_match ? "IDENTICAL (serial == batched)" : "DIVERGED");
  return decisions_match ? 0 : 1;
}
