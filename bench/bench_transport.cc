// Simnet vs real-transport verification throughput: the same batched SNIP
// pipeline driven (a) by the simulated in-process deployment, (b) by real
// ServerNode protocol nodes exchanging sealed frames over in-process
// loopback queues, and (c) by the same nodes over real TCP sockets on
// localhost. The spread between (a) and (c) is the price of actual message
// serialization, sealing, and socket I/O -- the paper's deployments are
// compute-bound, so the batched pipeline should keep TCP within a small
// factor of simnet on a loaded host.

#include <cstdio>
#include <latch>
#include <thread>

#include "afe/bitvec_sum.h"
#include "bench_util.h"
#include "core/client.h"
#include "core/deployment.h"
#include "net/tcp_transport.h"
#include "net/transport.h"
#include "server/node.h"

namespace prio {
namespace {

using F = Fp64;
using Afe = afe::BitVectorSum<F>;

constexpr size_t kServers = 3;
constexpr u64 kMasterSeed = 9;

std::vector<Submission> make_workload(const Afe& afe, size_t n) {
  PrioClient<F, Afe> encoder(&afe, kServers, kMasterSeed);
  SecureRng rng(4242);
  std::vector<Submission> subs;
  subs.reserve(n);
  const size_t len = afe.length();
  for (u64 cid = 0; cid < n; ++cid) {
    std::vector<u8> bits(len, 0);
    bits[cid % len] = 1;
    subs.push_back({cid, encoder.upload(bits, cid, rng)});
  }
  return subs;
}

ServerNodeConfig node_cfg(size_t self) {
  ServerNodeConfig cfg;
  cfg.num_servers = kServers;
  cfg.self = self;
  cfg.master_seed = kMasterSeed;
  return cfg;
}

// Times only the verification traffic: every thread builds its transport
// and node (TCP connect/hello handshakes, context setup) before the clock
// starts, then all nodes are released together.
template <typename MakeTransport>
double mesh_rate(const Afe& afe, const std::vector<Submission>& subs,
                 size_t batch, MakeTransport make_transport, u64* bytes_out) {
  std::latch ready(kServers + 1);
  std::latch go(1);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < kServers; ++i) {
    threads.emplace_back([&, i] {
      auto transport = make_transport(i);
      ServerNode<F, Afe> node(&afe, node_cfg(i), transport.get());
      auto view = node_view(std::span<const Submission>(subs), i);
      ready.count_down();
      go.wait();
      for (size_t off = 0; off < view.size(); off += batch) {
        const size_t q = std::min(batch, view.size() - off);
        node.process_batch(
            std::span<const SubmissionShare>(view.data() + off, q));
      }
      node.publish_epoch();
      if (bytes_out && i == 0) {
        if (auto* tcp = dynamic_cast<net::TcpMeshTransport*>(transport.get())) {
          *bytes_out = tcp->bytes_sent();
        }
      }
    });
  }
  ready.arrive_and_wait();  // all meshes up, nothing verified yet
  const auto t0 = std::chrono::steady_clock::now();
  go.count_down();
  for (auto& t : threads) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return static_cast<double>(subs.size()) / secs;
}

}  // namespace
}  // namespace prio

int main() {
  using namespace prio;
  const bool full = benchutil::full_mode();
  const size_t kLen = 64;
  const size_t kN = full ? 2048 : 512;
  const size_t kBatch = 64;
  Afe afe(kLen);

  benchutil::header("simnet vs real transport (batched SNIP verification)");
  std::printf("servers=%zu  submission_len=%zu  N=%zu  Q=%zu  hw_threads=%u\n",
              kServers, kLen, kN, kBatch, std::thread::hardware_concurrency());

  auto subs = make_workload(afe, kN);

  // (a) Simulated deployment: all servers driven from one thread, traffic
  // accounted but never materialized.
  double sim_rate;
  {
    DeploymentOptions opts;
    opts.num_servers = kServers;
    opts.master_seed = kMasterSeed;
    opts.batch_threads = 1;
    PrioDeployment<F, Afe> dep(&afe, opts);
    double secs = benchutil::time_seconds([&] {
      for (size_t off = 0; off < subs.size(); off += kBatch) {
        const size_t q = std::min(kBatch, subs.size() - off);
        dep.process_batch(std::span<const Submission>(subs.data() + off, q));
      }
    }, 1);
    sim_rate = static_cast<double>(subs.size()) / secs;
  }
  std::printf("\n%-34s %12.0f subs/s   (baseline)\n", "simnet process_batch",
              sim_rate);

  // (b) Real protocol nodes over loopback queues (frames serialized and
  // sealed, no sockets).
  {
    net::LoopbackMesh mesh(kServers, /*recv_timeout_ms=*/60'000);
    auto rate = mesh_rate(afe, subs, kBatch, [&](size_t i) {
      return std::make_unique<net::LoopbackTransport>(&mesh, i);
    }, nullptr);
    std::printf("%-34s %12.0f subs/s   (%.2fx simnet)  [%.1f wire B/sub]\n",
                "ServerNode mesh, loopback", rate, rate / sim_rate,
                static_cast<double>(mesh.sim().total_bytes()) / kN);
  }

  // (c) The same nodes over real TCP sockets on localhost.
  {
    std::vector<std::unique_ptr<net::TcpListener>> listeners;
    std::vector<net::TcpMeshTransport::PeerAddr> addrs;
    for (size_t i = 0; i < kServers; ++i) {
      listeners.push_back(std::make_unique<net::TcpListener>(0));
      addrs.push_back({"127.0.0.1", listeners.back()->port()});
    }
    const std::vector<u8> mesh_secret = master_seed_bytes(kMasterSeed);
    u64 bytes = 0;
    auto rate = mesh_rate(afe, subs, kBatch, [&](size_t i) {
      return std::make_unique<net::TcpMeshTransport>(
          i, addrs, listeners[i].get(), mesh_secret, 30'000, 60'000);
    }, &bytes);
    std::printf("%-34s %12.0f subs/s   (%.2fx simnet)  [server0 sent %.1f B/sub]\n",
                "ServerNode mesh, TCP localhost", rate, rate / sim_rate,
                static_cast<double>(bytes) / kN);
  }
  return 0;
}
