// Table 3 reproduction: time for a client to generate a Prio submission of
// L four-bit integers, for the small and large field.
//
// Paper layout (workstation columns; the phone columns are a constant
// ~5-10x multiple, see EXPERIMENTS.md):
//
//              Field size:   87-bit   265-bit        (paper)
//              Mul. in field (us)  1.013   1.485
//              L = 10^1            0.003   0.004
//              L = 10^2            0.024   0.036
//              L = 10^3            0.221   0.344
//
// Ours reports the same rows over Fp64 / Fp128. The client cost includes
// AFE encoding, SNIP proof generation, PRG share compression and AEAD
// sealing for a 5-server deployment -- everything in client_upload().

#include <cstdio>

#include "afe/sum.h"
#include "bench_util.h"
#include "core/deployment.h"

namespace prio {
namespace {

// The submission is a vector of L four-bit integers: model as L independent
// IntegerSum encodings concatenated -- equivalently one circuit with L*(4+?)
// structure. We build a single AFE holding L four-bit values.
template <PrimeField F>
class FourBitVector {
 public:
  using Field = F;
  using Input = std::vector<u64>;
  using Result = std::vector<u64>;

  explicit FourBitVector(size_t l) : l_(l), circuit_(make_circuit(l)) {}

  size_t k() const { return 5 * l_; }
  size_t k_prime() const { return l_; }

  std::vector<F> encode(const Input& xs) const {
    require(xs.size() == l_, "FourBitVector: arity");
    std::vector<F> out;
    out.reserve(k());
    for (u64 x : xs) out.push_back(F::from_u64(x));
    for (u64 x : xs) afe::append_bits(out, x, 4);
    return out;
  }

  const Circuit<F>& valid_circuit() const { return circuit_; }

  Result decode(std::span<const F> sigma, size_t) const {
    Result out(l_);
    for (size_t i = 0; i < l_; ++i) out[i] = sigma[i].to_u64();
    return out;
  }

 private:
  static Circuit<F> make_circuit(size_t l) {
    CircuitBuilder<F> b(5 * l);
    for (size_t i = 0; i < l; ++i) {
      afe::assert_binary_decomposition(b, b.input(i), l + 4 * i, 4);
    }
    return b.build();
  }

  size_t l_;
  Circuit<F> circuit_;
};

template <PrimeField F>
double field_mul_us() {
  SecureRng rng(1);
  F a = rng.field_element<F>();
  F b = rng.field_element<F>();
  const int iters = 2'000'000;
  double secs = benchutil::time_seconds([&] {
    for (int i = 0; i < iters; ++i) a = a * b;
  });
  volatile u64 sink = a.is_zero() ? 0 : 1;
  (void)sink;
  return secs / iters * 1e6;
}

template <PrimeField F>
double client_time_s(size_t l) {
  FourBitVector<F> afe(l);
  PrioDeployment<F, FourBitVector<F>> dep(&afe, {.num_servers = 5});
  SecureRng rng(2);
  std::vector<u64> xs(l);
  for (size_t i = 0; i < l; ++i) xs[i] = i % 16;
  int reps = l >= 1000 ? 3 : 20;
  double secs = benchutil::time_seconds([&] {
    for (int i = 0; i < reps; ++i) {
      auto blobs = dep.client_upload(xs, static_cast<u64>(i), rng);
      volatile size_t sink = blobs[0].size();
      (void)sink;
    }
  });
  return secs / reps;
}

}  // namespace
}  // namespace prio

int main() {
  using namespace prio;
  benchutil::header("Table 3: client submission time, L four-bit integers");
  std::printf("%-22s %12s %12s\n", "", "Fp64 (64-bit)", "Fp128 (126-bit)");
  std::printf("%-22s %12.4f %12.4f\n", "Mul. in field (us)",
              field_mul_us<Fp64>(), field_mul_us<Fp128>());
  for (size_t l : {10, 100, 1000}) {
    std::printf("L = 10^%d (s)           %12.4f %12.4f\n",
                l == 10 ? 1 : l == 100 ? 2 : 3, client_time_s<Fp64>(l),
                client_time_s<Fp128>(l));
  }
  std::printf(
      "\nPaper (workstation, 87-bit / 265-bit): mul 1.013/1.485 us;\n"
      "L=10: 0.003/0.004 s; L=100: 0.024/0.036 s; L=1000: 0.221/0.344 s.\n"
      "Check: time grows ~linearly in L (M log M SNIP term dominated by\n"
      "encode+share+seal at these sizes) and the large field costs ~1.5x.\n");
  return 0;
}
