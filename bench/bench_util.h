// Shared helpers for the table/figure reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper and prints
// it in a paper-like layout. Set PRIO_BENCH_FULL=1 to run the full sweeps
// (larger submission lengths, more NIZK points); the default keeps every
// binary under a couple of minutes on a laptop-class core.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

namespace prio::benchutil {

inline bool full_mode() {
  const char* env = std::getenv("PRIO_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

// Median-of-repeats wall-clock timing, in seconds.
inline double time_seconds(const std::function<void()>& fn, int repeats = 3) {
  double best = 1e300;
  for (int i = 0; i < repeats; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    auto end = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(end - start).count());
  }
  return best;
}

inline void header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

// Flat key/value JSON emitter for the BENCH_*.json CI artifacts. Shared so
// the artifact format cannot drift between bench binaries.
struct JsonWriter {
  std::string out = "{\n";
  bool first = true;

  void kv(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    raw(key, buf);
  }
  void kv(const std::string& key, unsigned long long v) {
    raw(key, std::to_string(v));
  }
  void kv(const std::string& key, const std::string& v) {
    raw(key, "\"" + v + "\"");
  }
  void raw(const std::string& key, const std::string& v) {
    if (!first) out += ",\n";
    first = false;
    out += "  \"" + key + "\": " + v;
  }
  std::string finish() { return out + "\n}\n"; }
};

}  // namespace prio::benchutil
