// Hot-path benchmark for the batch verification engine, with a
// machine-readable JSON trajectory.
//
// Measures, on one machine:
//  * the Lagrange-row inner product: scalar reference (poly/lagrange.h)
//    vs the lazy-reduction kernel (field/kernels.h);
//  * PRG share expansion: scalar expand_share_seed vs the bulk
//    expand_share_seed_into path;
//  * the SNIP round-1 local check: legacy snip_local_check (fresh
//    allocations per call) vs the SnipVerifier engine (reused scratch),
//    including heap allocations per check via a counting allocator;
//  * the end-to-end batched pipeline (process_batch) in subs/sec.
//
// Writes BENCH_hotpath.json (or --out <path>) so perf PRs accumulate a
// recorded trajectory; --smoke shrinks the workload for CI.

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <new>
#include <optional>
#include <string>
#include <thread>

#include "afe/bitvec_sum.h"
#include "bench_util.h"
#include "core/deployment.h"
#include "field/kernels.h"
#include "obs/metrics.h"
#include "poly/lagrange.h"
#include "server/node.h"
#include "server/protocol.h"

// ---------------------------------------------------------------------------
// Counting allocator: every operator new in this binary bumps a counter,
// so "allocations per submission" is an exact count, not an estimate.
// ---------------------------------------------------------------------------
namespace {
std::atomic<unsigned long long> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace prio {
namespace {

using F = Fp64;
using Afe = afe::BitVectorSum<F>;

unsigned long long allocs_during(const std::function<void()>& fn) {
  const unsigned long long before = g_allocs.load(std::memory_order_relaxed);
  fn();
  return g_allocs.load(std::memory_order_relaxed) - before;
}

}  // namespace
}  // namespace prio

int main(int argc, char** argv) {
  using namespace prio;
  bool smoke = false;
  std::string out_path = "BENCH_hotpath.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }
  const bool full = benchutil::full_mode();

  const size_t kServers = 3;
  const size_t kLen = full ? 128 : 64;                    // submission bits
  const size_t kN = smoke ? 256 : (full ? 4096 : 1024);   // submissions
  const size_t kBatch = 64;                               // Q
  const int kReps = smoke ? 1 : 3;
  Afe afe(kLen);
  const Circuit<F>& circuit = afe.valid_circuit();
  SnipProver<F> prover(&circuit);
  const size_t ext_len = prover.layout().total_len();

  benchutil::header("SNIP hot path: scalar reference vs batch engine");
  std::printf("servers=%zu  len=%zu bits  ext_len=%zu  N=%zu  Q=%zu  hw=%u%s\n",
              kServers, kLen, ext_len, kN, kBatch,
              std::thread::hardware_concurrency(), smoke ? "  [smoke]" : "");

  benchutil::JsonWriter json;
  json.kv("bench", std::string("hotpath"));
  json.kv("field", std::string("Fp64"));
  json.kv("servers", static_cast<unsigned long long>(kServers));
  json.kv("submission_bits", static_cast<unsigned long long>(kLen));
  json.kv("ext_len", static_cast<unsigned long long>(ext_len));

  // ---- inner product: scalar reference vs lazy-reduction kernel --------
  {
    const size_t n = 4096;
    const size_t iters = smoke ? 500 : 4000;
    SecureRng rng(7);
    std::vector<F> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = rng.field_element<F>();
      b[i] = rng.field_element<F>();
    }
    F sink = F::zero();
    const double t_ref = benchutil::time_seconds([&] {
      for (size_t it = 0; it < iters; ++it) {
        sink += inner_product(a, std::span<const F>(b));
      }
    }, kReps);
    const double t_ker = benchutil::time_seconds([&] {
      for (size_t it = 0; it < iters; ++it) {
        sink += kernels::inner_product<F>(a, b);
      }
    }, kReps);
    require(!sink.is_zero(), "bench: inner products vanished");
    const double ref_ns = t_ref / (iters * n) * 1e9;
    const double ker_ns = t_ker / (iters * n) * 1e9;
    std::printf("\ninner_product (n=%zu):   scalar %6.2f ns/elem   kernel %6.2f"
                " ns/elem   (%.2fx)\n", n, ref_ns, ker_ns, ref_ns / ker_ns);
    json.kv("inner_product_scalar_ns_per_elem", ref_ns);
    json.kv("inner_product_kernel_ns_per_elem", ker_ns);
  }

  // ---- PRG expansion: per-element fill(8) vs bulk blocks ---------------
  {
    const size_t iters = smoke ? 200 : 2000;
    std::array<u8, 32> seed{};
    seed[0] = 42;
    std::vector<F> buf(ext_len);
    const double t_ref = benchutil::time_seconds([&] {
      for (size_t it = 0; it < iters; ++it) {
        auto v = expand_share_seed<F>(seed, ext_len);
        buf[0] += v[0];
      }
    }, kReps);
    const double t_bulk = benchutil::time_seconds([&] {
      for (size_t it = 0; it < iters; ++it) {
        expand_share_seed_into<F>(seed, std::span<F>(buf));
      }
    }, kReps);
    const double ref_rate = iters * ext_len / t_ref / 1e6;
    const double bulk_rate = iters * ext_len / t_bulk / 1e6;
    std::printf("prg expansion (len=%zu): scalar %6.1f Melem/s  bulk  %6.1f"
                " Melem/s   (%.2fx)\n", ext_len, ref_rate, bulk_rate,
                bulk_rate / ref_rate);
    json.kv("expand_scalar_melems_per_s", ref_rate);
    json.kv("expand_bulk_melems_per_s", bulk_rate);
  }

  // ---- round-1 local check: legacy vs engine ---------------------------
  {
    const size_t iters = smoke ? 500 : 5000;
    SecureRng rng(11);
    VerificationContext<F> ctx(&circuit, kServers, 99);
    std::vector<u8> bits(kLen, 1);
    std::vector<F> enc = afe.encode(bits);
    auto ext = prover.build_extended_input(enc, rng);
    auto shares = share_vector<F>(ext, kServers, rng);
    SnipVerifier<F> ver(&circuit);

    F sink = F::zero();
    unsigned long long legacy_allocs = 0, engine_allocs = 0;
    const double t_legacy = benchutil::time_seconds([&] {
      legacy_allocs = allocs_during([&] {
        for (size_t it = 0; it < iters; ++it) {
          auto st = snip_local_check(ctx, 0, std::span<const F>(shares[0]));
          sink += st.d_share;
        }
      }) / iters;
    }, kReps);
    const double t_engine = benchutil::time_seconds([&] {
      engine_allocs = allocs_during([&] {
        for (size_t it = 0; it < iters; ++it) {
          auto st = ver.local_check(ctx, 0, std::span<const F>(shares[0]));
          sink += st.d_share;
        }
      }) / iters;
    }, kReps);
    require(!sink.is_zero() || iters == 0, "bench: checks vanished");
    const double legacy_rate = iters / t_legacy;
    const double engine_rate = iters / t_engine;
    std::printf("local check:             legacy %6.0f /s (%llu allocs)   "
                "engine %6.0f /s (%llu allocs)   (%.2fx)\n",
                legacy_rate, legacy_allocs, engine_rate, engine_allocs,
                engine_rate / legacy_rate);
    json.kv("local_check_legacy_per_s", legacy_rate);
    json.kv("local_check_engine_per_s", engine_rate);
    json.kv("local_check_legacy_allocs", legacy_allocs);
    json.kv("local_check_engine_allocs", engine_allocs);
  }

  // ---- end-to-end batched pipeline ------------------------------------
  std::vector<Submission> subs;
  {
    PrioDeployment<F, Afe> client_side(&afe, {.num_servers = kServers});
    SecureRng rng(42);
    subs.reserve(kN);
    for (u64 cid = 0; cid < kN; ++cid) {
      std::vector<u8> bits(kLen, 0);
      bits[cid % kLen] = 1;
      subs.push_back({cid, client_side.client_upload(bits, cid, rng)});
    }
  }
  double batch_rate = 0, serial_rate = 0;
  {
    PrioDeployment<F, Afe> serial_dep(&afe, {.num_servers = kServers});
    const double t_serial = benchutil::time_seconds([&] {
      for (const auto& sub : subs) {
        serial_dep.process_submission(sub.client_id, sub.blobs);
      }
    }, 1);
    serial_rate = kN / t_serial;

    PrioDeployment<F, Afe> batch_dep(&afe, {.num_servers = kServers,
                                            .batch_threads = 1});
    const double t_batch = benchutil::time_seconds([&] {
      for (size_t off = 0; off < kN; off += kBatch) {
        const size_t q = std::min(kBatch, kN - off);
        batch_dep.process_batch(
            std::span<const Submission>(subs.data() + off, q));
      }
    }, 1);
    batch_rate = kN / t_batch;
    require(batch_dep.accepted() == kN, "bench: pipeline rejected inputs");

    std::printf("pipeline:                serial %6.0f subs/s   "
                "batch(Q=%zu) %6.0f subs/s   %.0f ns/sub\n",
                serial_rate, kBatch, batch_rate, 1e9 / batch_rate);
    json.kv("pipeline_serial_subs_per_s", serial_rate);
    json.kv("pipeline_batch_subs_per_s", batch_rate);
    json.kv("pipeline_batch_ns_per_sub", 1e9 / batch_rate);
  }

  // ---- sharded multi-lane pipeline ------------------------------------
  // The compute model of the sharded server runtime (server/router.h): N
  // independent lanes, each a single-threaded batch pipeline over its
  // shard_of-split of the same submissions, running concurrently. The
  // headline number is the best lane count on this host -- on >= 4 cores
  // the 4-shard split should scale well past the single-lane rate.
  {
    double best_rate = 0;
    size_t best_shards = 1;
    for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      std::vector<std::vector<Submission>> split(shards);
      for (const auto& sub : subs) {
        split[server::shard_of(sub.client_id, shards)].push_back(sub);
      }
      std::vector<std::unique_ptr<PrioDeployment<F, Afe>>> lanes;
      for (size_t s = 0; s < shards; ++s) {
        lanes.push_back(std::make_unique<PrioDeployment<F, Afe>>(
            &afe, DeploymentOptions{.num_servers = kServers,
                                    .batch_threads = 1}));
      }
      const double t = benchutil::time_seconds([&] {
        std::vector<std::thread> threads;
        threads.reserve(shards);
        for (size_t s = 0; s < shards; ++s) {
          threads.emplace_back([&, s] {
            const auto& mine = split[s];
            for (size_t off = 0; off < mine.size(); off += kBatch) {
              const size_t q = std::min(kBatch, mine.size() - off);
              lanes[s]->process_batch(
                  std::span<const Submission>(mine.data() + off, q));
            }
          });
        }
        for (auto& th : threads) th.join();
      }, 1);
      u64 accepted = 0;
      for (const auto& lane : lanes) accepted += lane->accepted();
      require(accepted == kN, "bench: sharded pipeline rejected inputs");
      const double rate = kN / t;
      std::printf("pipeline sharded(%zu):    %6.0f subs/s   (%.2fx batch)\n",
                  shards, rate, rate / batch_rate);
      json.kv("pipeline_sharded" + std::to_string(shards) + "_subs_per_s",
              rate);
      if (rate > best_rate) {
        best_rate = rate;
        best_shards = shards;
      }
    }
    json.kv("pipeline_sharded_subs_per_s", best_rate);
    json.kv("shards", static_cast<unsigned long long>(best_shards));
  }

  // ---- pipelined node runtime (prepare/rounds overlap) -----------------
  // The compute model of --pipeline-depth 2 (server/shard.h): while a
  // lane's batch N runs its four SNIP rounds over the mesh, a prefetch
  // thread decrypts and PRG-expands batch N+1 into a second PreparedBatch.
  // This stage runs the real ServerNode split (prepare_batch /
  // commit_or_rollback) over a LoopbackMesh -- protocol-faithful rounds,
  // no sockets -- at depth 1 (serial baseline) and depth 2 (one slot of
  // overlap), across 1/2/4 lanes. On >= 4 cores depth 2 should pull well
  // ahead of the depth-1 rate; on fewer cores it must not regress.
  {
    double best_d1 = 0, best_d2 = 0;
    size_t best_d2_shards = 1;
    for (size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
      std::vector<std::vector<Submission>> split(shards);
      for (const auto& sub : subs) {
        split[server::shard_of(sub.client_id, shards)].push_back(sub);
      }
      // Fresh nodes per run (the replay floor would reject a re-run of
      // the same counters); best of two runs per config damps scheduler
      // noise, which dominates on small machines.
      auto run_config = [&](size_t depth, obs::Registry* reg = nullptr) {
        net::LoopbackMesh mesh(kServers, 60'000, shards);
        std::vector<std::unique_ptr<net::LoopbackTransport>> bases;
        for (size_t i = 0; i < kServers; ++i) {
          bases.push_back(std::make_unique<net::LoopbackTransport>(&mesh, i));
        }
        std::vector<std::unique_ptr<net::LaneTransport>> lane_views;
        std::vector<std::unique_ptr<ServerNode<F, Afe>>> nodes;
        for (size_t l = 0; l < shards; ++l) {
          for (size_t i = 0; i < kServers; ++i) {
            lane_views.push_back(
                std::make_unique<net::LaneTransport>(bases[i].get(), l));
            ServerNodeConfig cfg;
            cfg.num_servers = kServers;
            cfg.self = i;
            cfg.lane = l;
            cfg.batch_threads = 1;
            cfg.metrics = reg;
            nodes.push_back(std::make_unique<ServerNode<F, Afe>>(
                &afe, cfg, lane_views.back().get()));
          }
        }
        const double t = benchutil::time_seconds([&] {
          std::vector<std::thread> threads;
          threads.reserve(shards * kServers);
          for (size_t l = 0; l < shards; ++l) {
            for (size_t i = 0; i < kServers; ++i) {
              ServerNode<F, Afe>* node = nodes[l * kServers + i].get();
              const std::vector<Submission>* mine = &split[l];
              threads.emplace_back([node, mine, depth, kBatch] {
                const size_t nb = (mine->size() + kBatch - 1) / kBatch;
                auto view = [&](size_t b) {
                  const size_t off = b * kBatch;
                  const size_t q = std::min(kBatch, mine->size() - off);
                  return node_view(
                      std::span<const Submission>(mine->data() + off, q),
                      node->self());
                };
                // On a single-core host there is no second core to overlap
                // prepare with the rounds, so the prefetch handoff is pure
                // context-switch loss: prepare inline instead. Multi-core
                // hosts take the overlapped path below.
                if (depth == 1 || std::thread::hardware_concurrency() < 2) {
                  for (size_t b = 0; b < nb; ++b) {
                    const auto shares = view(b);
                    PreparedBatch<F> prep;
                    node->prepare_batch(shares, prep);
                    node->commit_or_rollback(shares, prep);
                  }
                  return;
                }
                // Depth 2: double-buffered slots filled by a persistent
                // prefetch thread (the runtime's shape), fed batch b+1
                // while slot b's rounds run on this thread.
                std::vector<SubmissionShare> shares[2];
                PreparedBatch<F> preps[2];
                std::mutex mu;
                std::condition_variable cv;
                std::optional<size_t> req;
                bool done = false, quit = false;
                std::thread pf([&] {
                  std::unique_lock<std::mutex> lock(mu);
                  for (;;) {
                    cv.wait(lock, [&] { return quit || req.has_value(); });
                    if (quit) return;
                    const size_t b = *req;
                    req.reset();
                    lock.unlock();
                    shares[b % 2] = view(b);
                    node->prepare_batch(shares[b % 2], preps[b % 2]);
                    lock.lock();
                    done = true;
                    cv.notify_all();
                  }
                });
                if (nb > 0) {
                  shares[0] = view(0);
                  node->prepare_batch(shares[0], preps[0]);
                }
                for (size_t b = 0; b < nb; ++b) {
                  bool prefetching = false;
                  if (b + 1 < nb) {
                    std::lock_guard<std::mutex> lock(mu);
                    req = b + 1;
                    done = false;
                    cv.notify_all();
                    prefetching = true;
                  }
                  node->commit_or_rollback(shares[b % 2], preps[b % 2]);
                  if (prefetching) {
                    std::unique_lock<std::mutex> lock(mu);
                    cv.wait(lock, [&] { return done; });
                  }
                }
                {
                  std::lock_guard<std::mutex> lock(mu);
                  quit = true;
                  cv.notify_all();
                }
                pf.join();
              });
            }
          }
          for (auto& th : threads) th.join();
        }, 1);
        u64 accepted = 0;
        for (size_t l = 0; l < shards; ++l) {
          accepted += nodes[l * kServers]->accepted();
        }
        require(accepted == kN, "bench: pipelined node runtime rejected inputs");
        return kN / t;
      };
      for (size_t depth : {size_t{1}, size_t{2}}) {
        const double rate = std::max(run_config(depth), run_config(depth));
        std::printf("pipeline node d%zu s%zu:     %6.0f subs/s   (%.2fx batch)\n",
                    depth, shards, rate, rate / batch_rate);
        json.kv("pipeline_pipelined_d" + std::to_string(depth) + "_s" +
                    std::to_string(shards) + "_subs_per_s",
                rate);
        if (depth == 1 && rate > best_d1) best_d1 = rate;
        if (depth == 2 && rate > best_d2) {
          best_d2 = rate;
          best_d2_shards = shards;
        }
      }

      // ---- metrics overhead gate (src/obs/) ----------------------------
      // Same depth-2 two-lane run, uninstrumented vs with an attached
      // obs::Registry (stage histograms + verdict counters recording).
      // All node metrics fire per BATCH, not per submission, so the delta
      // must stay under 2%; scheduler noise at these run lengths can
      // exceed that, hence best-of-two per side and up to four attempts.
      if (shards == 2) {
        double overhead = 1.0, base_rate = 0.0, instr_rate = 0.0;
        for (int att = 0; att < 4 && overhead >= 0.02; ++att) {
          base_rate = std::max(run_config(2), run_config(2));
          obs::Registry reg;
          instr_rate = std::max(run_config(2, &reg), run_config(2, &reg));
          overhead =
              base_rate > 0 ? (base_rate - instr_rate) / base_rate : 0.0;
        }
        std::printf("metrics overhead d2 s2:  off %6.0f subs/s   on %6.0f"
                    " subs/s   (%+.2f%%)\n",
                    base_rate, instr_rate, overhead * 100.0);
        json.kv("metrics_off_subs_per_s", base_rate);
        json.kv("metrics_on_subs_per_s", instr_rate);
        json.kv("metrics_overhead_frac", overhead);
        require(overhead < 0.02,
                "bench: metrics overhead exceeds 2% at depth 2");
      }
    }
    json.kv("pipeline_pipelined1_subs_per_s", best_d1);
    json.kv("pipeline_pipelined_subs_per_s", best_d2);
    json.kv("pipeline_pipelined_shards",
            static_cast<unsigned long long>(best_d2_shards));
    json.kv("pipeline_depth", 2ull);
    std::printf("pipeline pipelined:      depth1 %6.0f subs/s   depth2 %6.0f"
                " subs/s   (%.2fx)\n", best_d1, best_d2,
                best_d1 > 0 ? best_d2 / best_d1 : 0.0);
  }

  std::string payload = json.finish();
  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fwrite(payload.data(), 1, payload.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  return 0;
}
