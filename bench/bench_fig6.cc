// Figure 6 reproduction: bytes a *non-leader* server transmits to check the
// validity of one client submission, vs submission length.
//
// Expected shape: Prio's SNIP line is constant (a few field elements);
// Prio-MPC grows Theta(M) (one Beaver (d, e) pair per multiplication
// gate); NIZK grows Theta(L) with a larger constant (relaying 33-byte
// commitments). At large L the paper reports a ~4000x gap between NIZK and
// Prio.

#include <cstdio>

#include "afe/bitvec_sum.h"
#include "baseline/nizk.h"
#include "bench_util.h"
#include "core/deployment.h"
#include "core/mpc_deployment.h"

namespace prio {
namespace {

using F = Fp64;

u64 prio_bytes(size_t l) {
  afe::BitVectorSum<F> afe(l);
  PrioDeployment<F, afe::BitVectorSum<F>> dep(&afe, {.num_servers = 5});
  SecureRng rng(1);
  std::vector<u8> bits(l, 1);
  // client_id 0 -> leader is server 0, so server 1 is a non-leader.
  dep.process_submission(0, dep.client_upload(bits, 0, rng));
  return dep.network().bytes_sent_by(1);
}

u64 prio_mpc_bytes(size_t l) {
  afe::BitVectorSum<F> afe(l);
  PrioMpcDeployment<F, afe::BitVectorSum<F>> dep(&afe, {.num_servers = 5});
  SecureRng rng(2);
  std::vector<u8> bits(l, 1);
  dep.process_submission(0, dep.client_upload(bits, 0, rng));
  return dep.network().bytes_sent_by(1);
}

u64 nizk_bytes(size_t l) {
  afe::BitVectorSum<F> afe(l);
  baseline::NizkDeployment<F> dep(&afe, 5);
  SecureRng rng(3);
  std::vector<u8> bits(l, 1);
  auto up = dep.client_upload(bits, rng);
  dep.process_submission(0, up);
  return dep.network().bytes_sent_by(1);
}

}  // namespace
}  // namespace prio

int main() {
  using namespace prio;
  benchutil::header(
      "Figure 6: per-submission bytes transmitted by a non-leader server");
  const size_t max_log = benchutil::full_mode() ? 14 : 12;
  std::printf("%8s %12s %12s %12s\n", "L", "Prio", "Prio-MPC", "NIZK");
  u64 prio_first = 0, prio_last = 0, nizk_last = 0;
  for (size_t lg = 2; lg <= max_log; lg += 2) {
    size_t l = size_t{1} << lg;
    u64 p = prio_bytes(l);
    u64 m = prio_mpc_bytes(l);
    u64 z = lg <= 10 ? nizk_bytes(l) : 33 * l + 17 + 32;  // exact model
    if (prio_first == 0) prio_first = p;
    prio_last = p;
    nizk_last = z;
    std::printf("%8zu %12llu %12llu %12llu\n", l,
                static_cast<unsigned long long>(p),
                static_cast<unsigned long long>(m),
                static_cast<unsigned long long>(z));
  }
  std::printf(
      "\nShape check vs paper Fig. 6: Prio constant (%llu B at both ends),\n"
      "Prio-MPC and NIZK linear; NIZK/Prio gap at the largest length: %.0fx\n"
      "(paper reports ~4000x at 2^14 elements).\n",
      static_cast<unsigned long long>(prio_last),
      static_cast<double>(nizk_last) / static_cast<double>(prio_first));
  return 0;
}
